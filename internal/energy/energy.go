// Package energy models transceiver energy consumption by duration
// accounting, the substitute for the FIT IoT-LAB power measurements of
// §6.2.1. Both QMA and CSMA/CA keep the transceiver in receive mode for the
// whole CAP ("During this time, the transceiver is turned on to guarantee
// compatibility with CSMA/CA", §4), so the comparison reduces to transmit
// airtime on top of a shared listening floor — which is why the paper
// measures no difference between the schemes.
package energy

import (
	"fmt"

	"qma/internal/radio"
	"qma/internal/sim"
)

// Profile holds the current draws of a transceiver state machine.
type Profile struct {
	// Name identifies the radio.
	Name string
	// TxMilliAmp is the draw while transmitting.
	TxMilliAmp float64
	// RxMilliAmp is the draw while listening or receiving.
	RxMilliAmp float64
	// IdleMilliAmp is the draw with the transceiver off (MCU still up).
	IdleMilliAmp float64
	// SupplyVolt is the supply voltage.
	SupplyVolt float64
}

// AT86RF231 returns the profile of the radio on the FIT IoT-LAB M3 boards
// (datasheet figures: 14 mA TX at +3 dBm, 12.3 mA RX_ON, 0.4 mA TRX_OFF,
// 3.0 V supply).
func AT86RF231() Profile {
	return Profile{Name: "AT86RF231", TxMilliAmp: 14.0, RxMilliAmp: 12.3, IdleMilliAmp: 0.4, SupplyVolt: 3.0}
}

// Report is the per-node energy breakdown over a run.
type Report struct {
	// TxTime is the cumulative transmit airtime.
	TxTime sim.Time
	// ListenTime is the receive/listen time (CAP residency minus TX).
	ListenTime sim.Time
	// OffTime is the remainder of the run.
	OffTime sim.Time
	// TxMilliJoule, ListenMilliJoule, OffMilliJoule are the per-state
	// energies.
	TxMilliJoule     float64
	ListenMilliJoule float64
	OffMilliJoule    float64
}

// TotalMilliJoule reports the node's total energy over the run.
func (r Report) TotalMilliJoule() float64 {
	return r.TxMilliJoule + r.ListenMilliJoule + r.OffMilliJoule
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("tx=%.2fmJ listen=%.2fmJ off=%.2fmJ total=%.2fmJ",
		r.TxMilliJoule, r.ListenMilliJoule, r.OffMilliJoule, r.TotalMilliJoule())
}

// Account computes the energy report for one node: the transceiver listens
// during every CAP of the run except while transmitting, and is off
// otherwise. capOn is the cumulative CAP residency (duration × CAP duty
// cycle for always-associated nodes).
func Account(p Profile, total, capOn sim.Time, radioStats radio.NodeStats) Report {
	tx := radioStats.TxAirtime
	listen := capOn - tx
	if listen < 0 {
		listen = 0
	}
	off := total - capOn
	if off < 0 {
		off = 0
	}
	mj := func(d sim.Time, milliAmp float64) float64 {
		return d.Seconds() * milliAmp * p.SupplyVolt
	}
	return Report{
		TxTime:           tx,
		ListenTime:       listen,
		OffTime:          off,
		TxMilliJoule:     mj(tx, p.TxMilliAmp),
		ListenMilliJoule: mj(listen, p.RxMilliAmp),
		OffMilliJoule:    mj(off, p.IdleMilliAmp),
	}
}
