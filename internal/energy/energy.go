// Package energy models transceiver energy consumption by duration
// accounting, the substitute for the FIT IoT-LAB power measurements of
// §6.2.1. Both QMA and CSMA/CA keep the transceiver in receive mode for the
// whole CAP ("During this time, the transceiver is turned on to guarantee
// compatibility with CSMA/CA", §4), so the comparison reduces to transmit
// airtime on top of a shared listening floor — which is why the paper
// measures no difference between the schemes.
package energy

import (
	"fmt"

	"qma/internal/radio"
	"qma/internal/sim"
)

// PowerStep maps one programmable TX output power setting to its supply
// current.
type PowerStep struct {
	// DBm is the output power of the setting.
	DBm float64
	// MilliAmp is the supply current while transmitting at it.
	MilliAmp float64
}

// Profile holds the current draws of a transceiver state machine.
type Profile struct {
	// Name identifies the radio.
	Name string
	// TxMilliAmp is the draw while transmitting at maximum power (the
	// backwards-compatible flat model used when TxSteps is empty).
	TxMilliAmp float64
	// RxMilliAmp is the draw while listening or receiving.
	RxMilliAmp float64
	// IdleMilliAmp is the draw with the transceiver off (MCU still up).
	IdleMilliAmp float64
	// SupplyVolt is the supply voltage.
	SupplyVolt float64
	// TxSteps, when non-empty, maps the radio's discrete TX power settings
	// to supply currents in descending DBm order; TxSteps[0] must match
	// TxMilliAmp so flat accounting and step accounting agree at maximum
	// power.
	TxSteps []PowerStep
}

// AT86RF231 returns the profile of the radio on the FIT IoT-LAB M3 boards
// (datasheet figures: 14 mA TX at +3 dBm, 12.3 mA RX_ON, 0.4 mA TRX_OFF,
// 3.0 V supply). TxSteps follows the datasheet's TX_PWR characteristic —
// the supply current falls off sub-linearly as the PA backs down from
// +3 dBm to the −17 dBm minimum.
func AT86RF231() Profile {
	return Profile{
		Name: "AT86RF231", TxMilliAmp: 14.0, RxMilliAmp: 12.3, IdleMilliAmp: 0.4, SupplyVolt: 3.0,
		TxSteps: []PowerStep{
			{DBm: 3, MilliAmp: 14.0},
			{DBm: 0, MilliAmp: 12.7},
			{DBm: -3, MilliAmp: 11.8},
			{DBm: -6, MilliAmp: 11.0},
			{DBm: -9, MilliAmp: 10.4},
			{DBm: -12, MilliAmp: 9.9},
			{DBm: -17, MilliAmp: 9.5},
		},
	}
}

// TxMilliAmpAt reports the TX supply current at the requested output power:
// the draw of the weakest programmable step still delivering at least dbm
// (the radio rounds a requested power up to the next setting). Requests
// above the strongest step draw the maximum; below the weakest, the
// minimum setting's draw (the radio cannot go lower). Profiles without
// TxSteps draw TxMilliAmp at every power.
func (p Profile) TxMilliAmpAt(dbm float64) float64 {
	if len(p.TxSteps) == 0 {
		return p.TxMilliAmp
	}
	for i := len(p.TxSteps) - 1; i >= 0; i-- {
		if p.TxSteps[i].DBm >= dbm {
			return p.TxSteps[i].MilliAmp
		}
	}
	return p.TxSteps[0].MilliAmp
}

// MaxTxDBm reports the strongest programmable output power (TxSteps[0]), or
// 0 for profiles without steps. It is the reference power the radio layer's
// per-transmission reductions are counted from.
func (p Profile) MaxTxDBm() float64 {
	if len(p.TxSteps) == 0 {
		return 0
	}
	return p.TxSteps[0].DBm
}

// Report is the per-node energy breakdown over a run.
type Report struct {
	// TxTime is the cumulative transmit airtime.
	TxTime sim.Time
	// ListenTime is the receive/listen time (CAP residency minus TX).
	ListenTime sim.Time
	// OffTime is the remainder of the run.
	OffTime sim.Time
	// TxMilliJoule, ListenMilliJoule, OffMilliJoule are the per-state
	// energies.
	TxMilliJoule     float64
	ListenMilliJoule float64
	OffMilliJoule    float64
}

// TotalMilliJoule reports the node's total energy over the run.
func (r Report) TotalMilliJoule() float64 {
	return r.TxMilliJoule + r.ListenMilliJoule + r.OffMilliJoule
}

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("tx=%.2fmJ listen=%.2fmJ off=%.2fmJ total=%.2fmJ",
		r.TxMilliJoule, r.ListenMilliJoule, r.OffMilliJoule, r.TotalMilliJoule())
}

// Account computes the energy report for one node: the transceiver listens
// during every CAP of the run except while transmitting, and is off
// otherwise. capOn is the cumulative CAP residency (duration × CAP duty
// cycle for always-associated nodes). TX is charged flat at TxMilliAmp —
// correct for single-power runs transmitting at maximum power; power-diverse
// runs use AccountPowered with the medium's airtime breakdown.
func Account(p Profile, total, capOn sim.Time, radioStats radio.NodeStats) Report {
	return AccountPowered(p, total, capOn, radioStats, p.MaxTxDBm(), nil)
}

// AccountPowered is Account with the TX draw resolved per power level:
// byPower is the node's airtime breakdown (radio.Medium.TxAirtimeByPower;
// ReduceDB counts down from refDBm, the absolute output power the radio
// layer's reference corresponds to — Profile.MaxTxDBm for hardware driven at
// full power). A nil byPower charges all of radioStats.TxAirtime at refDBm;
// with an empty TxSteps table every power collapses to the flat TxMilliAmp,
// making Account a special case.
func AccountPowered(p Profile, total, capOn sim.Time, radioStats radio.NodeStats, refDBm float64, byPower []radio.PowerAirtime) Report {
	tx := radioStats.TxAirtime
	listen := capOn - tx
	if listen < 0 {
		listen = 0
	}
	off := total - capOn
	if off < 0 {
		off = 0
	}
	mj := func(d sim.Time, milliAmp float64) float64 {
		return d.Seconds() * milliAmp * p.SupplyVolt
	}
	var txMJ float64
	if len(byPower) == 0 {
		txMJ = mj(tx, p.TxMilliAmpAt(refDBm))
	} else {
		for _, pa := range byPower {
			txMJ += mj(pa.Airtime, p.TxMilliAmpAt(refDBm-pa.ReduceDB))
		}
	}
	return Report{
		TxTime:           tx,
		ListenTime:       listen,
		OffTime:          off,
		TxMilliJoule:     txMJ,
		ListenMilliJoule: mj(listen, p.RxMilliAmp),
		OffMilliJoule:    mj(off, p.IdleMilliAmp),
	}
}
