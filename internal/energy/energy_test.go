package energy

import (
	"math"
	"testing"

	"qma/internal/radio"
	"qma/internal/sim"
)

func TestAccountBreakdown(t *testing.T) {
	p := AT86RF231()
	total := 100 * sim.Second
	capOn := 50 * sim.Second
	stats := radio.NodeStats{TxAirtime: 2 * sim.Second}
	r := Account(p, total, capOn, stats)

	if r.TxTime != 2*sim.Second || r.ListenTime != 48*sim.Second || r.OffTime != 50*sim.Second {
		t.Fatalf("time breakdown: tx=%v listen=%v off=%v", r.TxTime, r.ListenTime, r.OffTime)
	}
	wantTx := 2.0 * 14.0 * 3.0
	wantListen := 48.0 * 12.3 * 3.0
	wantOff := 50.0 * 0.4 * 3.0
	if math.Abs(r.TxMilliJoule-wantTx) > 1e-9 {
		t.Errorf("TxMilliJoule = %v, want %v", r.TxMilliJoule, wantTx)
	}
	if math.Abs(r.ListenMilliJoule-wantListen) > 1e-9 {
		t.Errorf("ListenMilliJoule = %v, want %v", r.ListenMilliJoule, wantListen)
	}
	if math.Abs(r.OffMilliJoule-wantOff) > 1e-9 {
		t.Errorf("OffMilliJoule = %v, want %v", r.OffMilliJoule, wantOff)
	}
	if math.Abs(r.TotalMilliJoule()-(wantTx+wantListen+wantOff)) > 1e-9 {
		t.Errorf("TotalMilliJoule = %v", r.TotalMilliJoule())
	}
}

func TestAccountClampsNegatives(t *testing.T) {
	p := AT86RF231()
	// TX airtime exceeding CAP residency (pathological inputs) must not
	// produce negative listen time.
	r := Account(p, 10*sim.Second, 1*sim.Second, radio.NodeStats{TxAirtime: 2 * sim.Second})
	if r.ListenTime != 0 {
		t.Errorf("ListenTime = %v, want 0", r.ListenTime)
	}
	r = Account(p, 1*sim.Second, 2*sim.Second, radio.NodeStats{})
	if r.OffTime != 0 {
		t.Errorf("OffTime = %v, want 0", r.OffTime)
	}
}

// TestEnergyParityArgument reproduces the §6.2.1 reasoning: with equal
// transmission attempts, the listening floor dominates and two schemes
// differ by well under a percent.
func TestEnergyParityArgument(t *testing.T) {
	p := AT86RF231()
	total := 400 * sim.Second
	capOn := 200 * sim.Second
	qma := Account(p, total, capOn, radio.NodeStats{TxAirtime: 3 * sim.Second})
	csma := Account(p, total, capOn, radio.NodeStats{TxAirtime: 3300 * sim.Millisecond})
	rel := math.Abs(qma.TotalMilliJoule()-csma.TotalMilliJoule()) / qma.TotalMilliJoule()
	if rel > 0.01 {
		t.Errorf("energy difference %.3f%%, want < 1%% (listening floor dominates)", rel*100)
	}
}
