package energy

import (
	"math"
	"testing"

	"qma/internal/radio"
	"qma/internal/sim"
)

func TestAccountBreakdown(t *testing.T) {
	p := AT86RF231()
	total := 100 * sim.Second
	capOn := 50 * sim.Second
	stats := radio.NodeStats{TxAirtime: 2 * sim.Second}
	r := Account(p, total, capOn, stats)

	if r.TxTime != 2*sim.Second || r.ListenTime != 48*sim.Second || r.OffTime != 50*sim.Second {
		t.Fatalf("time breakdown: tx=%v listen=%v off=%v", r.TxTime, r.ListenTime, r.OffTime)
	}
	wantTx := 2.0 * 14.0 * 3.0
	wantListen := 48.0 * 12.3 * 3.0
	wantOff := 50.0 * 0.4 * 3.0
	if math.Abs(r.TxMilliJoule-wantTx) > 1e-9 {
		t.Errorf("TxMilliJoule = %v, want %v", r.TxMilliJoule, wantTx)
	}
	if math.Abs(r.ListenMilliJoule-wantListen) > 1e-9 {
		t.Errorf("ListenMilliJoule = %v, want %v", r.ListenMilliJoule, wantListen)
	}
	if math.Abs(r.OffMilliJoule-wantOff) > 1e-9 {
		t.Errorf("OffMilliJoule = %v, want %v", r.OffMilliJoule, wantOff)
	}
	if math.Abs(r.TotalMilliJoule()-(wantTx+wantListen+wantOff)) > 1e-9 {
		t.Errorf("TotalMilliJoule = %v", r.TotalMilliJoule())
	}
}

func TestAccountClampsNegatives(t *testing.T) {
	p := AT86RF231()
	// TX airtime exceeding CAP residency (pathological inputs) must not
	// produce negative listen time.
	r := Account(p, 10*sim.Second, 1*sim.Second, radio.NodeStats{TxAirtime: 2 * sim.Second})
	if r.ListenTime != 0 {
		t.Errorf("ListenTime = %v, want 0", r.ListenTime)
	}
	r = Account(p, 1*sim.Second, 2*sim.Second, radio.NodeStats{})
	if r.OffTime != 0 {
		t.Errorf("OffTime = %v, want 0", r.OffTime)
	}
}

// TestTxMilliAmpAtSteps pins the datasheet-step TX draw model: requested
// powers round up to the next programmable setting, the extremes clamp, and
// the maximum setting matches the flat TxMilliAmp so single-power accounting
// is unchanged.
func TestTxMilliAmpAtSteps(t *testing.T) {
	p := AT86RF231()
	cases := []struct{ dbm, want float64 }{
		{3, 14.0},  // maximum setting
		{10, 14.0}, // above the strongest step: clamp to max
		{0, 12.7},  // exact step
		{-1, 12.7}, // between −3 and 0: round up to 0 dBm
		{-3, 11.8}, // exact step
		{-9, 10.4}, // exact step
		{-15, 9.9}, // between −17 and −12: round up to the −12 dBm setting
		{-17, 9.5}, // weakest setting
		{-40, 9.5}, // below the weakest: clamp to min
	}
	for _, c := range cases {
		if got := p.TxMilliAmpAt(c.dbm); got != c.want {
			t.Errorf("TxMilliAmpAt(%g) = %g, want %g", c.dbm, got, c.want)
		}
	}
	if p.TxMilliAmpAt(p.MaxTxDBm()) != p.TxMilliAmp {
		t.Error("maximum step draw differs from the flat TxMilliAmp")
	}
	flat := Profile{TxMilliAmp: 11, RxMilliAmp: 1, SupplyVolt: 3}
	if flat.TxMilliAmpAt(-7) != 11 {
		t.Error("profiles without TxSteps must fall back to the flat draw")
	}
}

// TestAccountPoweredBreakdown pins the power-aware TX accounting: airtime
// split across levels is charged at each level's draw, a nil breakdown
// collapses to Account, and transmitting lower always costs less.
func TestAccountPoweredBreakdown(t *testing.T) {
	p := AT86RF231()
	total, capOn := 100*sim.Second, 50*sim.Second
	stats := radio.NodeStats{TxAirtime: 3 * sim.Second}
	byPower := []radio.PowerAirtime{
		{ReduceDB: 0, Airtime: 1 * sim.Second}, // +3 dBm → 14.0 mA
		{ReduceDB: 6, Airtime: 2 * sim.Second}, // −3 dBm → 11.8 mA
	}
	r := AccountPowered(p, total, capOn, stats, 3, byPower)
	wantTx := (1.0*14.0 + 2.0*11.8) * 3.0
	if math.Abs(r.TxMilliJoule-wantTx) > 1e-9 {
		t.Errorf("TxMilliJoule = %v, want %v", r.TxMilliJoule, wantTx)
	}
	if r.ListenTime != 47*sim.Second {
		t.Errorf("ListenTime = %v, want 47s (breakdown must not change the time split)", r.ListenTime)
	}

	flatEquivalent := AccountPowered(p, total, capOn, stats, 3, nil)
	if flatEquivalent != Account(p, total, capOn, stats) {
		t.Error("nil breakdown at the reference power differs from Account")
	}

	allReduced := AccountPowered(p, total, capOn, stats, 3,
		[]radio.PowerAirtime{{ReduceDB: 12, Airtime: 3 * sim.Second}})
	if allReduced.TxMilliJoule >= r.TxMilliJoule {
		t.Errorf("deeper reduction must cost less: %v vs %v", allReduced.TxMilliJoule, r.TxMilliJoule)
	}
}

// TestEnergyParityArgument reproduces the §6.2.1 reasoning: with equal
// transmission attempts, the listening floor dominates and two schemes
// differ by well under a percent.
func TestEnergyParityArgument(t *testing.T) {
	p := AT86RF231()
	total := 400 * sim.Second
	capOn := 200 * sim.Second
	qma := Account(p, total, capOn, radio.NodeStats{TxAirtime: 3 * sim.Second})
	csma := Account(p, total, capOn, radio.NodeStats{TxAirtime: 3300 * sim.Millisecond})
	rel := math.Abs(qma.TotalMilliJoule()-csma.TotalMilliJoule()) / qma.TotalMilliJoule()
	if rel > 0.01 {
		t.Errorf("energy difference %.3f%%, want < 1%% (listening floor dominates)", rel*100)
	}
}
