// Package barring implements sink-side load-adaptive access-class barring,
// the control loop that keeps a contention network stable past saturation:
// once per beacon interval the sink folds the congestion it observed on the
// medium — collisions, captures, delivered rate, channel occupancy — into a
// barring factor p ∈ [0,1] and broadcasts it (with a barring backoff time)
// in the beacon. Nodes gate every new channel-access attempt on a
// Bernoulli(p) draw (mac.Base), so the admitted load tracks what the channel
// can carry instead of whatever the sources offer — the access-control half
// of the decoupled massive-access design in PAPERS.md.
//
// Everything here is a pure, deterministic controller: it draws no
// randomness, and its zero-valued Config is disabled and guaranteed not to
// change a run in any way (the same convention internal/faults and the
// dynamics config pin).
package barring

import (
	"fmt"

	"qma/internal/sim"
)

// Policy selects a controller flavour. The zero value disables barring.
type Policy string

const (
	// PolicyOff disables barring entirely (the zero value).
	PolicyOff Policy = ""
	// PolicyFixed broadcasts a constant barring factor P.
	PolicyFixed Policy = "fixed"
	// PolicyAIMD additively opens admission while the channel is healthy and
	// multiplicatively cuts it when the collision ratio passes the target —
	// the TCP-flavoured rule that converges to a fair stable point.
	PolicyAIMD Policy = "aimd"
	// PolicyPID is a velocity-form PI controller on the collision ratio: it
	// reacts proportionally to the error change and integrally to the error
	// itself, trading AIMD's sawtooth for a smoother approach.
	PolicyPID Policy = "pid"
)

// Observation is one beacon interval's congestion estimate, assembled by the
// scenario from counters the sink already has: its own radio.NodeStats diff
// (delivered/collided/captured receptions) and the medium's channel
// occupancy.
type Observation struct {
	// Delivered counts frames the sink decoded during the interval.
	Delivered uint64
	// Collided counts receptions the sink lost to collisions.
	Collided uint64
	// Captured counts receptions that survived an overlap via SINR capture
	// (they signal contention even though the frame got through).
	Captured uint64
	// BusyFraction is the channel-occupancy fraction of the interval: total
	// transmission airtime divided by interval length. Overlapping
	// transmissions count separately, so values above 1 indicate heavy
	// contention.
	BusyFraction float64
}

// CollisionRatio is the fraction of sink receptions that collided or needed
// capture to survive, 0 when the interval saw no traffic. It is the primary
// congestion signal: on a healthy channel it stays near zero, while past
// saturation most receptions collide.
func (o Observation) CollisionRatio() float64 {
	total := o.Delivered + o.Collided + o.Captured
	if total == 0 {
		return 0
	}
	return float64(o.Collided+o.Captured) / float64(total)
}

// Controller maps a stream of per-interval congestion observations to the
// barring factor broadcast in the next beacon. Implementations are
// deterministic state machines; Update must always return a value in [0,1].
type Controller interface {
	// Update folds one beacon interval's observation in and returns the
	// barring factor for the next interval.
	Update(o Observation) float64
}

// Default controller parameters, chosen so that a zero-valued knob selects a
// sensible behaviour rather than a degenerate one.
const (
	// DefaultTarget is the collision-ratio setpoint: the controllers aim to
	// keep roughly this fraction of sink receptions contested.
	DefaultTarget = 0.1
	// DefaultMinP is the admission floor: even a fully congested channel
	// keeps admitting a trickle, so the controller always sees fresh
	// observations and starvation cannot become permanent.
	DefaultMinP = 0.05
	// defaultIncrease is AIMD's additive step per healthy interval.
	defaultIncrease = 0.05
	// defaultDecrease is AIMD's multiplicative cut per congested interval.
	defaultDecrease = 0.5
	// defaultKp and defaultKi are the PID policy's gains on the
	// collision-ratio error (velocity form).
	defaultKp = 0.5
	// defaultKi is deliberately gentle: the integral term acts every
	// interval, so a large gain would oscillate.
	defaultKi = 0.25
)

// Config selects and parameterizes a controller, plus the beacon-loop timing
// the scenario needs. The zero value is disabled; zero-valued knobs of an
// enabled config select the documented defaults.
type Config struct {
	// Policy selects the controller ("" disables barring).
	Policy Policy
	// P is the fixed policy's factor, and the initial factor of the adaptive
	// policies (0 selects 1: start fully open).
	P float64
	// Target is the collision-ratio setpoint for aimd/pid
	// (0 selects DefaultTarget).
	Target float64
	// MinP is the admission floor (0 selects DefaultMinP; the fixed policy
	// ignores it).
	MinP float64
	// Interval is the beacon/control interval at which the sink re-estimates
	// congestion and re-broadcasts p (0 selects one superframe).
	Interval sim.Time
	// Backoff is the barring backoff time broadcast with p: how long a
	// barred node waits before redrawing (0 selects one superframe).
	Backoff sim.Time
}

// Enabled reports whether the config arms barring at all.
func (c *Config) Enabled() bool { return c.Policy != PolicyOff }

// Validate reports a descriptive error when the config is not realizable.
// A disabled config is always valid.
func (c *Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	switch c.Policy {
	case PolicyFixed, PolicyAIMD, PolicyPID:
	default:
		return fmt.Errorf("barring: unknown policy %q (want fixed, aimd or pid)", c.Policy)
	}
	if c.P < 0 || c.P > 1 {
		return fmt.Errorf("barring: factor P=%v outside [0,1]", c.P)
	}
	if c.Target < 0 || c.Target >= 1 {
		return fmt.Errorf("barring: target collision ratio %v outside [0,1)", c.Target)
	}
	if c.MinP < 0 || c.MinP > 1 {
		return fmt.Errorf("barring: admission floor MinP=%v outside [0,1]", c.MinP)
	}
	if c.Interval < 0 {
		return fmt.Errorf("barring: negative interval %v", c.Interval)
	}
	if c.Backoff < 0 {
		return fmt.Errorf("barring: negative backoff %v", c.Backoff)
	}
	return nil
}

// initialP resolves the configured starting factor.
func (c *Config) initialP() float64 {
	if c.P == 0 {
		return 1
	}
	return clamp(c.P)
}

func (c *Config) target() float64 {
	if c.Target == 0 {
		return DefaultTarget
	}
	return c.Target
}

func (c *Config) minP() float64 {
	if c.MinP == 0 {
		return DefaultMinP
	}
	return c.MinP
}

// New builds the configured controller. The config must be enabled and
// valid; scenario builders call Validate first.
func New(c Config) Controller {
	switch c.Policy {
	case PolicyFixed:
		return &fixed{p: c.initialP()}
	case PolicyAIMD:
		return &aimd{p: c.initialP(), target: c.target(), minP: c.minP(),
			inc: defaultIncrease, dec: defaultDecrease}
	case PolicyPID:
		return &pid{p: c.initialP(), target: c.target(), minP: c.minP(),
			kp: defaultKp, ki: defaultKi}
	default:
		panic(fmt.Sprintf("barring: New on policy %q (validate first)", c.Policy))
	}
}

func clamp(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}

// clampFloor clamps p into [minP, 1].
func clampFloor(p, minP float64) float64 {
	if p < minP {
		return minP
	}
	return clamp(p)
}

// fixed always broadcasts the same factor.
type fixed struct{ p float64 }

func (f *fixed) Update(Observation) float64 { return f.p }

// aimd opens admission additively while the collision ratio sits at or below
// the target and halves it when congestion passes the setpoint. An idle
// interval (no receptions, idle channel) also opens admission: the network
// may simply have drained.
type aimd struct {
	p, target, minP float64
	inc, dec        float64
}

func (a *aimd) Update(o Observation) float64 {
	if o.CollisionRatio() > a.target {
		a.p = clampFloor(a.p*a.dec, a.minP)
	} else {
		a.p = clampFloor(a.p+a.inc, a.minP)
	}
	return a.p
}

// pid is a velocity-form PI controller on the collision-ratio error: the
// factor moves by kp·Δerror + ki·error each interval, so steady error keeps
// pushing (integral action) without the controller ever storing an unbounded
// integral term.
type pid struct {
	p, target, minP float64
	kp, ki          float64
	prevErr         float64
	primed          bool
}

func (c *pid) Update(o Observation) float64 {
	err := c.target - o.CollisionRatio() // positive: channel healthier than setpoint
	if !c.primed {
		c.prevErr, c.primed = err, true
	}
	c.p = clampFloor(c.p+c.kp*(err-c.prevErr)+c.ki*err, c.minP)
	c.prevErr = err
	return c.p
}

// Beacon is the barring payload a sink broadcasts each beacon interval.
// Beacons are implicit in this simulator — nodes synchronize through the
// shared superframe clock — so the payload travels as a control-loop event
// that calls mac.Base.SetBarring on every node at the beacon instant.
type Beacon struct {
	// P is the barring factor for the next interval.
	P float64
	// Backoff is how long a barred node waits before redrawing.
	Backoff sim.Time
}

// Replay runs a fresh controller for cfg over a congestion trace and returns
// the factor after each observation. It is the pure reference the fuzz
// harness checks invariants against.
func Replay(cfg Config, trace []Observation) []float64 {
	ctrl := New(cfg)
	out := make([]float64, len(trace))
	for i, o := range trace {
		out[i] = ctrl.Update(o)
	}
	return out
}
