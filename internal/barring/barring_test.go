package barring

import (
	"math"
	"testing"

	"qma/internal/sim"
)

func TestZeroConfigDisabled(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("zero config invalid: %v", err)
	}
}

func TestValidateRejectsBadKnobs(t *testing.T) {
	bad := []Config{
		{Policy: "banana"},
		{Policy: PolicyFixed, P: -0.1},
		{Policy: PolicyFixed, P: 1.5},
		{Policy: PolicyAIMD, Target: 1},
		{Policy: PolicyAIMD, MinP: 2},
		{Policy: PolicyPID, Interval: -sim.Second},
		{Policy: PolicyPID, Backoff: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v passed validation", c)
		}
	}
	good := Config{Policy: PolicyAIMD, P: 0.8, Target: 0.2, MinP: 0.01,
		Interval: sim.Second, Backoff: sim.Millisecond}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestFixedHoldsItsFactor(t *testing.T) {
	ctrl := New(Config{Policy: PolicyFixed, P: 0.3})
	for i := 0; i < 10; i++ {
		if p := ctrl.Update(Observation{Collided: uint64(i * 100)}); p != 0.3 {
			t.Fatalf("fixed factor drifted to %v", p)
		}
	}
	// P=0 selects fully open, not fully barred.
	if p := New(Config{Policy: PolicyFixed}).Update(Observation{}); p != 1 {
		t.Fatalf("zero-P fixed controller returned %v, want 1", p)
	}
}

func TestAIMDReactsToCongestion(t *testing.T) {
	ctrl := New(Config{Policy: PolicyAIMD})
	congested := Observation{Delivered: 10, Collided: 90}
	healthy := Observation{Delivered: 100, Collided: 2}

	p := ctrl.Update(congested)
	if p >= 1 {
		t.Fatalf("congestion did not cut the factor: %v", p)
	}
	for i := 0; i < 20; i++ {
		p = ctrl.Update(congested)
	}
	if p != DefaultMinP {
		t.Fatalf("sustained congestion did not pin the floor: %v", p)
	}
	for i := 0; i < 40; i++ {
		p = ctrl.Update(healthy)
	}
	if p != 1 {
		t.Fatalf("sustained health did not reopen admission: %v", p)
	}
}

func TestPIDConvergesOnSetpoint(t *testing.T) {
	ctrl := New(Config{Policy: PolicyPID, Target: 0.2})
	// A synthetic plant: collision ratio grows with admission. The controller
	// should settle near the admission level where the ratio hits the target.
	plant := func(p float64) Observation {
		ratio := 0.5 * p // target 0.2 is reached at p = 0.4
		return Observation{Delivered: uint64(1000 * (1 - ratio)), Collided: uint64(1000 * ratio)}
	}
	p := 1.0
	for i := 0; i < 200; i++ {
		p = ctrl.Update(plant(p))
	}
	if math.Abs(p-0.4) > 0.05 {
		t.Fatalf("PID settled at %v, want ≈0.4", p)
	}
}

func TestExplicitKnobsOverrideDefaults(t *testing.T) {
	// A raised admission floor must stop the multiplicative decrease above
	// the default floor.
	ctrl := New(Config{Policy: PolicyAIMD, MinP: 0.4})
	congested := Observation{Delivered: 10, Collided: 90}
	var p float64
	for i := 0; i < 20; i++ {
		p = ctrl.Update(congested)
	}
	if p != 0.4 {
		t.Errorf("sustained congestion pinned p=%v, want the configured floor 0.4", p)
	}
	// The PID floor applies too, even under a wildly negative error.
	pidCtrl := New(Config{Policy: PolicyPID, MinP: 0.3, Target: 0.01})
	for i := 0; i < 50; i++ {
		p = pidCtrl.Update(congested)
	}
	if p != 0.3 {
		t.Errorf("PID under sustained congestion pinned p=%v, want the configured floor 0.3", p)
	}
}

func TestNewPanicsOnDisabledPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New on a disabled config did not panic")
		}
	}()
	New(Config{})
}

func TestCollisionRatioEdgeCases(t *testing.T) {
	if r := (Observation{}).CollisionRatio(); r != 0 {
		t.Errorf("empty interval ratio = %v, want 0", r)
	}
	if r := (Observation{Delivered: 3, Collided: 6, Captured: 3}).CollisionRatio(); math.Abs(r-0.75) > 1e-12 {
		t.Errorf("ratio = %v, want 0.75", r)
	}
}

// FuzzBarringControl throws arbitrary congestion traces at every policy:
// whatever the trace, the controller output must stay in [0,1] (with the
// adaptive policies never dropping below their admission floor), replay
// deterministically, and AIMD must converge — a sufficiently long all-healthy
// tail reopens admission fully, an all-congested tail pins the floor.
func FuzzBarringControl(f *testing.F) {
	f.Add(uint8(1), uint64(100), uint64(5), uint64(0), uint16(300), uint8(8))
	f.Add(uint8(2), uint64(0), uint64(900), uint64(30), uint16(1200), uint8(40))
	f.Add(uint8(0), uint64(1), uint64(0), uint64(0), uint16(0), uint8(1))
	f.Fuzz(func(t *testing.T, polRaw uint8, delivered, collided, captured uint64, busyRaw uint16, steps uint8) {
		policies := []Policy{PolicyFixed, PolicyAIMD, PolicyPID}
		cfg := Config{
			Policy: policies[int(polRaw)%len(policies)],
			P:      float64(polRaw%11) / 10,
			Target: float64(polRaw%10) / 10,
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("generated config invalid: %v", err)
		}
		// Derive a pseudo-arbitrary trace from the seed counters: each step
		// permutes the counts so the controller sees both congested and idle
		// intervals in fuzzer-chosen patterns.
		n := int(steps%64) + 1
		trace := make([]Observation, n)
		d, c, cap0 := delivered, collided, captured
		for i := range trace {
			trace[i] = Observation{
				Delivered:    d % 10000,
				Collided:     c % 10000,
				Captured:     cap0 % 10000,
				BusyFraction: float64(busyRaw%2000) / 1000,
			}
			d, c, cap0 = c+uint64(i), cap0*3+1, d/2
		}

		floor := cfg.minP()
		out := Replay(cfg, trace)
		for i, p := range out {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("step %d: factor %v escaped [0,1] (policy %s)", i, p, cfg.Policy)
			}
			if cfg.Policy != PolicyFixed && p < floor {
				t.Fatalf("step %d: factor %v under the %v floor (policy %s)", i, p, floor, cfg.Policy)
			}
		}
		again := Replay(cfg, trace)
		for i := range out {
			if out[i] != again[i] {
				t.Fatalf("step %d: replay diverged: %v vs %v", i, out[i], again[i])
			}
		}

		// AIMD convergence: append a long healthy run and a long congested
		// run; the factor must hit 1 and the floor respectively.
		if cfg.Policy == PolicyAIMD {
			ctrl := New(cfg)
			for _, o := range trace {
				ctrl.Update(o)
			}
			var p float64
			for i := 0; i < 64; i++ {
				p = ctrl.Update(Observation{Delivered: 100})
			}
			if p != 1 {
				t.Fatalf("AIMD did not reopen after a healthy tail: %v", p)
			}
			for i := 0; i < 64; i++ {
				p = ctrl.Update(Observation{Collided: 100})
			}
			if p != floor {
				t.Fatalf("AIMD did not pin the floor after a congested tail: %v", p)
			}
		}
	})
}
