package qma

import (
	"fmt"

	"qma/internal/qlearn"
)

// Learner is the paper's cooperative multi-agent Q-learning core (§3),
// exposed for embedding in systems other than the bundled simulator: the
// optimistic Eq. 5 update with penalty ξ, the separate policy table of
// Eq. 3, and a pluggable value representation. One Learner is one agent; the
// cooperative behaviour emerges from every agent applying the same rule to
// local observations.
//
// A Learner is not safe for concurrent use.
type Learner struct {
	inner *qlearn.Learner
	kind  TableKind
}

// NewLearner builds an agent over a states × actions table. defaultAction
// seeds the policy in every state (QMA uses its backoff action). The zero
// LearnParams value selects the paper's hyperparameters. TableFixed and
// TableQuant use integer-only arithmetic with γ quantized to 230/256.
func NewLearner(states, actions int, p LearnParams, kind TableKind, defaultAction int) (*Learner, error) {
	if states <= 0 || actions <= 0 {
		return nil, fmt.Errorf("qma: learner dimensions %dx%d must be positive", states, actions)
	}
	if defaultAction < 0 || defaultAction >= actions {
		return nil, fmt.Errorf("qma: default action %d out of range [0,%d)", defaultAction, actions)
	}
	var table qlearn.Table
	switch kind {
	case TableFloat:
		table = qlearn.NewFloatTable(states, actions, p.internal())
	case TableFixed:
		table = qlearn.NewFixedTable(states, actions, qlearn.DefaultFixedParams())
	case TableQuant:
		table = qlearn.NewQuantTable(states, actions, qlearn.DefaultQuantParams())
	default:
		return nil, fmt.Errorf("qma: unknown table kind %d", kind)
	}
	return &Learner{inner: qlearn.NewLearner(table, defaultAction), kind: kind}, nil
}

// Observe applies one experience tuple — action a taken in state s earned
// reward r and led to state next — using the paper's Eq. 5 update and Eq. 3
// policy rule. It returns the stored Q-value for (s, a).
func (l *Learner) Observe(s, a int, r float64, next int) float64 {
	return l.inner.Observe(s, a, r, next)
}

// Policy reports π(s), the agent's current action for state s.
func (l *Learner) Policy(s int) int { return l.inner.Policy(s) }

// Q reports the stored value for (s, a).
func (l *Learner) Q(s, a int) float64 { return l.inner.Table().Q(s, a) }

// CumulativePolicyQ reports Σ_s Q(s, π(s)), the paper's policy-stability
// metric (Fig. 10/12).
func (l *Learner) CumulativePolicyQ() float64 { return l.inner.CumulativePolicyQ() }

// States and Actions report the table dimensions.
func (l *Learner) States() int  { return l.inner.Table().States() }
func (l *Learner) Actions() int { return l.inner.Table().Actions() }

// Reset restores the initial table and policy.
func (l *Learner) Reset(defaultAction int) { l.inner.Reset(defaultAction) }

// ExplorationRate evaluates the paper's parameter-based exploration table
// (Fig. 4) for a local queue level and the mean of recently overheard
// neighbour queue levels.
func ExplorationRate(queueLevel int, avgNeighborQueue float64) float64 {
	return qlearn.NewParameterBased().Rate(qlearn.ExploreContext{
		QueueLevel:       queueLevel,
		AvgNeighborQueue: avgNeighborQueue,
	})
}

// ExpectedHandshakeMessages reports the expected number of messages until a
// DSME 3-way GTS handshake completes, for a per-message success probability
// p (paper Appendix A.1, Fig. 26).
func ExpectedHandshakeMessages(p float64) (float64, error) {
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("qma: p=%v out of [0,1]", p)
	}
	return markovExpected(p), nil
}
