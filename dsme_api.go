package qma

import (
	"errors"
	"fmt"

	"qma/internal/dsme"
	"qma/internal/markov"
	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/traffic"
)

func markovExpected(p float64) float64 { return markov.ExpectedHandshakeMessages(p) }

// DSMEScenario describes a §6.3 data-collection run: every non-sink node
// streams primary data to the topology's sink through guaranteed time slots,
// while the GTS (de)allocation handshakes and periodic route-discovery
// broadcasts contend during the CAP under the selected MAC.
type DSMEScenario struct {
	// Topology is the network (typically Rings(k)).
	Topology *Topology
	// MAC selects the CAP channel access scheme.
	MAC MAC
	// Learn and Table tune QMA's learning (ignored for CSMA runs).
	Learn LearnParams
	Table TableKind
	// Seed selects the random streams.
	Seed uint64
	// DurationSeconds is the total simulated time.
	DurationSeconds float64
	// WarmupSeconds opens the measurement window after network formation
	// (the paper uses 200 s).
	WarmupSeconds float64
	// Phases is the per-node primary rate schedule; nil selects the paper's
	// alternation of 1 and 10 packets/s every 5 s.
	Phases []Phase
	// BroadcastPeriodSeconds is the route-discovery hello interval
	// (0 selects 2 s).
	BroadcastPeriodSeconds float64
}

// DSMEResult reports the §6.3 metrics.
type DSMEResult struct {
	// SecondaryPDR is the delivery ratio of the CAP traffic (Fig. 21).
	SecondaryPDR float64
	// RequestSuccess is the fraction of acknowledged GTS-requests (Fig. 22).
	RequestSuccess float64
	// AllocationsPerSecond counts completed (de)allocation handshakes per
	// measured second.
	AllocationsPerSecond float64
	// PrimaryPDR and PrimaryDelaySeconds describe the GTS data path.
	PrimaryPDR          float64
	PrimaryDelaySeconds float64
	// DuplicateAllocations counts detected duplicate-GTS conflicts.
	DuplicateAllocations uint64
	// SlotsOwned is the final number of TX slots per node.
	SlotsOwned []int
}

// Validate reports the first configuration problem, or nil.
func (s *DSMEScenario) Validate() error {
	switch {
	case s.Topology == nil:
		return errors.New("qma: DSMEScenario.Topology is required")
	case s.DurationSeconds <= 0:
		return errors.New("qma: DSMEScenario.DurationSeconds must be positive")
	case s.WarmupSeconds < 0 || s.WarmupSeconds >= s.DurationSeconds:
		return fmt.Errorf("qma: WarmupSeconds=%v out of [0, duration)", s.WarmupSeconds)
	case s.Table < TableFloat || s.Table > TableQuant:
		return fmt.Errorf("qma: unknown table kind %d", s.Table)
	}
	return s.MAC.validate()
}

// Run executes the scenario and returns its metrics.
func (s *DSMEScenario) Run() (*DSMEResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg := dsme.ScenarioConfig{
		Network:         s.Topology.net,
		MAC:             s.MAC.kind(),
		Seed:            s.Seed,
		Duration:        sim.FromSeconds(s.DurationSeconds),
		Warmup:          sim.FromSeconds(s.WarmupSeconds),
		BroadcastPeriod: sim.FromSeconds(s.BroadcastPeriodSeconds),
	}
	cfg.QMA.Learn = s.Learn.internal()
	cfg.QMA.Table = scenario.TableKind(s.Table)
	for _, p := range s.Phases {
		cfg.Phases = append(cfg.Phases, traffic.Phase{Rate: p.Rate, Duration: sim.FromSeconds(p.Seconds)})
	}
	res := dsme.RunScenario(cfg)
	return &DSMEResult{
		SecondaryPDR:         res.Metrics.SecondaryPDR(),
		RequestSuccess:       res.Metrics.RequestSuccessRatio(),
		AllocationsPerSecond: res.AllocationsPerSecond,
		PrimaryPDR:           res.Metrics.PrimaryPDR(),
		PrimaryDelaySeconds:  res.Metrics.PrimaryMeanDelay(),
		DuplicateAllocations: res.Metrics.Duplicates,
		SlotsOwned:           res.SlotsOwned,
	}, nil
}
