package qma_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation at quick scale (run `cmd/qma-experiments -full` for paper-scale
// parameters) and measures the performance-critical primitives: the
// discrete event kernel, the three Q-table representations (the paper's
// §3.2 resource argument) and whole simulated seconds of each scenario.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"io"
	"testing"

	"qma"
	"qma/internal/experiments"
	"qma/internal/frame"
	"qma/internal/markov"
	"qma/internal/qlearn"
	"qma/internal/radio"
	"qma/internal/sim"
)

// benchMode returns a reduced configuration so the whole suite finishes in
// minutes.
func benchMode() experiments.Mode {
	m := experiments.Quick()
	m.Reps = 2
	m.Packets = 200
	return m
}

// runExperiment executes one registered experiment per iteration and fails
// the benchmark if it produced no tables.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	mode := benchMode()
	for i := 0; i < b.N; i++ {
		tables, ok := experiments.Run(id, mode)
		if !ok || len(tables) == 0 {
			b.Fatalf("experiment %s produced no tables", id)
		}
		for _, t := range tables {
			t.Render(io.Discard)
		}
	}
}

// One bench per paper artefact.

func BenchmarkFig07to09HiddenNodeSweep(b *testing.B) { runExperiment(b, "fig07-09") }
func BenchmarkFig10to11Convergence(b *testing.B)     { runExperiment(b, "fig10-11") }
func BenchmarkFig12Adaptability(b *testing.B)        { runExperiment(b, "fig12") }
func BenchmarkFig13to15SlotUtilization(b *testing.B) { runExperiment(b, "fig13-15") }
func BenchmarkFig18TreePDR(b *testing.B)             { runExperiment(b, "fig18") }
func BenchmarkFig19StarPDR(b *testing.B)             { runExperiment(b, "fig19") }
func BenchmarkEnergyParity(b *testing.B)             { runExperiment(b, "energy") }
func BenchmarkFig21to22DSMEScalability(b *testing.B) { runExperiment(b, "fig21-22") }
func BenchmarkFig26HandshakeMarkov(b *testing.B)     { runExperiment(b, "fig26") }
func BenchmarkAblations(b *testing.B)                { runExperiment(b, "ablation") }
func BenchmarkDynamicsFamily(b *testing.B)           { runExperiment(b, "dynamics") }

// Microbenchmarks.

// BenchmarkKernelEvent measures raw event scheduling + dispatch.
func BenchmarkKernelEvent(b *testing.B) {
	k := sim.NewKernel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.Schedule(1, func() {})
		k.Run(k.Now() + 1)
	}
}

// BenchmarkQTableUpdate measures one Eq. 5 update per representation — the
// per-decision cost on an embedded device.
func BenchmarkQTableUpdate(b *testing.B) {
	b.Run("float64", func(b *testing.B) {
		t := qlearn.NewFloatTable(54, 3, qlearn.DefaultParams())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t.Update(i%54, i%3, 4, (i+1)%54)
		}
	})
	b.Run("fixedQ8.8", func(b *testing.B) {
		t := qlearn.NewFixedTable(54, 3, qlearn.DefaultFixedParams())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t.Update(i%54, i%3, 4, (i+1)%54)
		}
	})
	b.Run("quant8bit", func(b *testing.B) {
		t := qlearn.NewQuantTable(54, 3, qlearn.DefaultQuantParams())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t.Update(i%54, i%3, 4, (i+1)%54)
		}
	})
}

// BenchmarkLearnerObserve measures a full Algorithm 1 learning step
// (update + policy maintenance).
func BenchmarkLearnerObserve(b *testing.B) {
	l := qlearn.NewLearner(qlearn.NewFloatTable(54, 3, qlearn.DefaultParams()), 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Observe(i%54, i%3, float64(i%7)-3, (i+1)%54)
	}
}

// BenchmarkMediumTransmit measures one broadcast across a 10-node clique,
// including collision bookkeeping and delivery.
func BenchmarkMediumTransmit(b *testing.B) {
	k := sim.NewKernel()
	g := radio.NewGraphTopology(10)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			g.AddLink(frame.NodeID(i), frame.NodeID(j))
		}
	}
	m := radio.NewMedium(k, g, sim.NewRand(1))
	for i := 0; i < 10; i++ {
		m.Attach(frame.NodeID(i), radio.HandlerFunc(func(*frame.Frame) {}))
	}
	f := &frame.Frame{Kind: frame.Data, Src: 0, Dst: frame.Broadcast, MPDUBytes: 50}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Src = frame.NodeID(i % 10)
		m.StartTX(f.Src, f, 0)
		k.RunAll()
	}
}

// BenchmarkHiddenNodeSecond measures one simulated second of the 3-node QMA
// scenario (δ=25) end to end.
func BenchmarkHiddenNodeSecond(b *testing.B) {
	sc := &qma.Scenario{
		Topology:        qma.HiddenNode(),
		MAC:             qma.QMA,
		Seed:            1,
		DurationSeconds: float64(b.N),
		Traffic: []qma.Traffic{
			{Origin: 0, Phases: []qma.Phase{{Rate: 25}}},
			{Origin: 2, Phases: []qma.Phase{{Rate: 25}}},
		},
	}
	b.ReportAllocs()
	if _, err := sc.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDSMESecond measures one simulated second of the 19-node DSME
// scenario under QMA.
func BenchmarkDSMESecond(b *testing.B) {
	rings, err := qma.Rings(2)
	if err != nil {
		b.Fatal(err)
	}
	sc := &qma.DSMEScenario{
		Topology:        rings,
		MAC:             qma.QMA,
		Seed:            1,
		DurationSeconds: float64(b.N + 1),
		WarmupSeconds:   1,
	}
	b.ReportAllocs()
	if _, err := sc.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFactoryHallEventsPerSec measures end-to-end simulation throughput
// on the large-scale factory-hall family: one simulated second per iteration
// with low-rate traffic from every routed node, reporting kernel events per
// wall-clock second. The three sizes pin the O(N + E) medium: events/s
// should stay within the same order of magnitude from 100 to 10,000 nodes.
func BenchmarkFactoryHallEventsPerSec(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			topo, err := qma.FactoryHall(n, 0, 42)
			if err != nil {
				b.Fatal(err)
			}
			sc := &qma.Scenario{
				Topology:        topo,
				MAC:             qma.QMA,
				Seed:            1,
				DurationSeconds: float64(b.N),
			}
			for i := 0; i < topo.NumNodes(); i++ {
				if i == topo.Sink() || !topo.HasRoute(i) {
					continue
				}
				sc.Traffic = append(sc.Traffic,
					qma.Traffic{Origin: i, Phases: []qma.Phase{{Rate: 0.2}}})
			}
			b.ReportAllocs()
			b.ResetTimer()
			res, err := sc.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkProtocolMatrix measures end-to-end simulation throughput per
// registered MAC protocol: one simulated second of the 10-node testbed tree
// per iteration with δ=2 from every non-sink node, reporting kernel events
// per wall-clock second. The sub-benchmarks enumerate the registry, so a new
// protocol package appears here without edits.
func BenchmarkProtocolMatrix(b *testing.B) {
	for _, mk := range qma.MACs() {
		b.Run(string(mk), func(b *testing.B) {
			topo := qma.Tree10()
			sc := &qma.Scenario{
				Topology:        topo,
				MAC:             mk,
				Seed:            1,
				DurationSeconds: float64(b.N),
			}
			for i := 0; i < topo.NumNodes(); i++ {
				if i == topo.Sink() {
					continue
				}
				sc.Traffic = append(sc.Traffic,
					qma.Traffic{Origin: i, Phases: []qma.Phase{{Rate: 2}}})
			}
			b.ReportAllocs()
			b.ResetTimer()
			res, err := sc.Run()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkHandshakeMatrix measures the Eq. 11 fundamental-matrix solve.
func BenchmarkHandshakeMatrix(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if markov.ExpectedHandshakeMessages(0.5) < 3 {
			b.Fatal("impossible expectation")
		}
	}
}
