package qma

import (
	"errors"
	"fmt"

	"qma/internal/scenario"
	"qma/internal/sim"
	"qma/internal/topo"
)

// MMTCScenario describes a massive-MTC scale-out run: a city-scale area is
// partitioned into a grid of cells, each with its own sink at the cell
// center, and the whole deployment runs on the sharded medium — one
// sub-simulation per cell on a worker pool, with boundary interference
// exchanged at beacon-aligned epoch barriers. This is the path past the
// 32767-node ceiling of the monolithic runner: node identity is per-cell, so
// N is bounded by memory, not by the 16-bit frame address space.
type MMTCScenario struct {
	// Nodes is the total device count across the city (sinks excluded).
	Nodes int
	// CellsX and CellsY shape the cell grid (0 selects 1).
	CellsX, CellsY int
	// Degree is the target mean decode degree steering the city's area
	// (0 selects 10).
	Degree float64
	// MAC selects the channel access scheme in every cell.
	MAC MAC
	// Seed selects the random streams (placement and per-cell simulation).
	Seed uint64
	// DurationSeconds is the simulated time.
	DurationSeconds float64
	// Rate is the per-device Poisson rate in packets/second; every routed
	// device carries one evaluation source.
	Rate float64
	// StartSeconds delays traffic; MaxPackets bounds each source
	// (0 = unbounded).
	StartSeconds float64
	MaxPackets   int
	// EpochSeconds is the boundary-exchange barrier period (0 selects one
	// superframe, 122.88 ms); WindowSeconds the streaming stats window
	// (0 selects 1 s).
	EpochSeconds  float64
	WindowSeconds float64
	// Parallel bounds the worker pool driving the cells (0 = GOMAXPROCS).
	// Results are byte-identical for every value.
	Parallel int
	// Lockstep selects the reference barrier scheduler instead of the
	// default dependency-driven one. Results are byte-identical either way;
	// the flag exists for equivalence checks and scheduler profiling.
	Lockstep bool
	// SummaryOnly is implied: the sharded runner never materializes per-node
	// results — result memory is O(cells + windows).
}

// MMTCCellResult reports one cell's aggregates.
type MMTCCellResult struct {
	// Cell is the cell index; Nodes its node count (sink included) and
	// Routed how many devices had a route.
	Cell, Nodes, Routed int
	// Generated and Delivered count the cell's evaluation packets; PDR is
	// their ratio and MeanDelaySeconds the mean end-to-end delay.
	Generated, Delivered uint64
	PDR                  float64
	MeanDelaySeconds     float64
	// EdgeTx counts transmissions mirrored into a neighbour cell;
	// ForeignBusy counts busy windows mirrored into this cell.
	EdgeTx, ForeignBusy uint64
	// Events is the cell kernel's event count.
	Events uint64
}

// MMTCResult reports a completed sharded run.
type MMTCResult struct {
	// Cells holds one entry per cell.
	Cells []MMTCCellResult
	// NetworkPDR is total delivered / total generated across cells.
	NetworkPDR float64
	// MeanDelaySeconds and the delay quantiles come from the merged
	// streaming digests (seconds).
	MeanDelaySeconds                 float64
	DelayP50Seconds, DelayP95Seconds float64
	DelayP99Seconds                  float64
	// CrossCellFraction is the fraction of transmissions mirrored into a
	// neighbour cell; BoundaryLinks the directed sense-range link count
	// crossing cell edges.
	CrossCellFraction float64
	BoundaryLinks     int
	// Events is the total event count; Truncated reports a cell that hit
	// its event budget.
	Events    uint64
	Truncated bool
}

// Validate reports the first configuration problem, or nil.
func (s *MMTCScenario) Validate() error {
	cx, cy := s.CellsX, s.CellsY
	if cx == 0 {
		cx = 1
	}
	if cy == 0 {
		cy = 1
	}
	switch {
	case cx < 1 || cy < 1:
		return errors.New("qma: MMTCScenario cell grid must be at least 1x1")
	case s.Nodes < 2*cx*cy:
		return fmt.Errorf("qma: MMTCScenario.Nodes=%d too small for %dx%d cells (need >= 2 per cell)", s.Nodes, cx, cy)
	case s.Nodes/(cx*cy) > 32767:
		return fmt.Errorf("qma: %d nodes per cell exceeds the 16-bit per-cell address space; use more cells", s.Nodes/(cx*cy))
	case s.DurationSeconds <= 0:
		return errors.New("qma: MMTCScenario.DurationSeconds must be positive")
	case s.Rate <= 0:
		return errors.New("qma: MMTCScenario.Rate must be positive")
	case s.StartSeconds < 0 || s.EpochSeconds < 0 || s.WindowSeconds < 0:
		return errors.New("qma: MMTCScenario time knobs must not be negative")
	case s.Degree < 0:
		return errors.New("qma: MMTCScenario.Degree must not be negative")
	}
	return s.MAC.validate()
}

// Run executes the sharded simulation.
func (s *MMTCScenario) Run() (*MMTCResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	city := topo.NewCity(topo.CityConfig{
		Nodes:  s.Nodes,
		CellsX: s.CellsX,
		CellsY: s.CellsY,
		Degree: s.Degree,
		Seed:   s.Seed,
	})
	res := scenario.RunSharded(scenario.ShardedConfig{
		City:       city,
		MAC:        s.MAC.kind(),
		Seed:       s.Seed,
		Duration:   sim.FromSeconds(s.DurationSeconds),
		Rate:       s.Rate,
		StartAt:    sim.FromSeconds(s.StartSeconds),
		MaxPackets: s.MaxPackets,
		Epoch:      sim.FromSeconds(s.EpochSeconds),
		Window:     sim.FromSeconds(s.WindowSeconds),
		Parallel:   s.Parallel,
		Lockstep:   s.Lockstep,
	})

	delay := res.DelayDigest()
	out := &MMTCResult{
		NetworkPDR:        res.NetworkPDR(),
		MeanDelaySeconds:  res.MeanDelay(),
		DelayP50Seconds:   delay.Quantile(0.50),
		DelayP95Seconds:   delay.Quantile(0.95),
		DelayP99Seconds:   delay.Quantile(0.99),
		CrossCellFraction: res.CrossCellFraction(),
		BoundaryLinks:     city.BoundaryLinks(),
		Events:            res.Events,
		Truncated:         res.Truncated,
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		mean := 0.0
		if c.Delivered > 0 {
			mean = (sim.Time(float64(c.DelaySum) / float64(c.Delivered))).Seconds()
		}
		out.Cells = append(out.Cells, MMTCCellResult{
			Cell:             c.Cell,
			Nodes:            c.Nodes,
			Routed:           c.Routed,
			Generated:        c.Generated,
			Delivered:        c.Delivered,
			PDR:              c.PDR(),
			MeanDelaySeconds: mean,
			EdgeTx:           c.EdgeTx,
			ForeignBusy:      c.ForeignBusy,
			Events:           c.Events,
		})
	}
	return out, nil
}
