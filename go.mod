module qma

go 1.24
