// Command qma-experiments regenerates the tables and figures of the paper's
// evaluation.
//
// Usage:
//
//	qma-experiments               # run everything at quick scale
//	qma-experiments -full         # paper-scale parameters (15 reps, 1000 pkts)
//	qma-experiments -run fig07-09 # one experiment
//	qma-experiments -list         # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"qma/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "paper-scale parameters (slower)")
	run := flag.String("run", "", "run a single experiment id (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	reps := flag.Int("reps", 0, "override the number of replications")
	parallel := flag.Int("parallel", 0, "worker pool size for replications and sweep points (0 = all CPUs, 1 = sequential)")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	mode := experiments.Quick()
	if *full {
		mode = experiments.Full()
	}
	if *reps > 0 {
		mode.Reps = *reps
	}
	mode.Parallel = *parallel

	start := time.Now()
	if *run != "" {
		tables, ok := experiments.Run(*run, mode)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; ids:\n", *run)
			for _, id := range experiments.IDs() {
				fmt.Fprintln(os.Stderr, "  "+id)
			}
			os.Exit(1)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
	} else {
		fmt.Printf("# qma experiment suite (%s mode, %d reps)\n\n", mode.Name, mode.Reps)
		experiments.RunAll(mode, os.Stdout)
	}
	fmt.Printf("# done in %v\n", time.Since(start).Round(time.Millisecond))
}
