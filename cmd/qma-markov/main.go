// Command qma-markov evaluates the Appendix A.1 handshake analysis: the
// expected number of messages until a DSME 3-way GTS handshake completes,
// for one success probability or a sweep (Fig. 26).
package main

import (
	"flag"
	"fmt"
	"os"

	"qma/internal/markov"
	"qma/internal/sim"
)

func main() {
	p := flag.Float64("p", 0, "single success probability (0 = sweep 1.0..0.1)")
	samples := flag.Int("samples", 200000, "Monte Carlo handshakes per point")
	flag.Parse()

	rng := sim.NewRand(7)
	row := func(p float64) {
		mx := markov.ExpectedHandshakeMessages(p)
		cf := markov.ExpectedHandshakeMessagesClosedForm(p)
		mc := markov.SimulateHandshakes(p, *samples, rng)
		fmt.Printf("%4.2f  %10.2f  %10.2f  %10.2f\n", p, mx, cf, mc)
	}
	fmt.Printf("%4s  %10s  %10s  %10s\n", "p", "matrix", "closed", "monteCarlo")
	if *p > 0 {
		if *p > 1 {
			fmt.Fprintln(os.Stderr, "qma-markov: p must be in (0,1]")
			os.Exit(1)
		}
		row(*p)
		return
	}
	for x := 10; x >= 1; x-- {
		row(float64(x) / 10)
	}
}
