package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sample is a minimal go-test-json stream with a split benchmark output
// line (name in one event, numbers in the next — go test wraps long names
// like that) and a sub-benchmark.
const sample = `{"Time":"2026-08-08T00:00:00Z","Action":"run","Package":"qma","Test":"BenchmarkKernelEvent"}
{"Time":"2026-08-08T00:00:01Z","Action":"output","Package":"qma","Test":"BenchmarkKernelEvent","Output":"BenchmarkKernelEvent     \t"}
{"Time":"2026-08-08T00:00:01Z","Action":"output","Package":"qma","Test":"BenchmarkKernelEvent","Output":"62343048\t        19.29 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Time":"2026-08-08T00:00:02Z","Action":"run","Package":"qma","Test":"BenchmarkQTableUpdate/float64"}
{"Time":"2026-08-08T00:00:03Z","Action":"output","Package":"qma","Test":"BenchmarkQTableUpdate/float64","Output":"BenchmarkQTableUpdate/float64         \t151073012\t         7.943 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Time":"2026-08-08T00:00:04Z","Action":"output","Package":"qma","Output":"PASS\n"}
`

func TestParseStream(t *testing.T) {
	res, err := parseStream(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	ke, ok := res["BenchmarkKernelEvent"]
	if !ok {
		t.Fatal("BenchmarkKernelEvent missing despite split output lines")
	}
	if ke.Iters != 62343048 || ke.NsOp != 19.29 {
		t.Errorf("KernelEvent = %+v, want 62343048 iters / 19.29 ns/op", ke)
	}
	qt, ok := res["BenchmarkQTableUpdate/float64"]
	if !ok {
		t.Fatal("sub-benchmark missing")
	}
	if qt.NsOp != 7.943 {
		t.Errorf("QTableUpdate/float64 = %+v", qt)
	}
}

func TestSubBenchmarks(t *testing.T) {
	res, err := parseStream(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if got := subBenchmarks(res, "BenchmarkKernelEvent"); len(got) != 1 || got[0] != "BenchmarkKernelEvent" {
		t.Errorf("top-level: %v", got)
	}
	if got := subBenchmarks(res, "BenchmarkQTableUpdate"); len(got) != 1 || got[0] != "BenchmarkQTableUpdate/float64" {
		t.Errorf("subs: %v", got)
	}
	if got := subBenchmarks(res, "BenchmarkMissing"); len(got) != 0 {
		t.Errorf("missing: %v", got)
	}
}

func TestParseStreamRejectsGarbage(t *testing.T) {
	if _, err := parseStream(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage accepted")
	}
}

// fakeBase builds a snapshot with one measurement per gated benchmark (and a
// sub-benchmark under BenchmarkQTableUpdate) at 100 ns/op.
func fakeBase() map[string]result {
	base := make(map[string]result)
	for _, names := range gated {
		for _, name := range names {
			if name == "BenchmarkQTableUpdate" {
				base[name+"/float64"] = result{Iters: 1000, NsOp: 100}
				base[name+"/fixedQ8.8"] = result{Iters: 2000, NsOp: 100}
				continue
			}
			base[name] = result{Iters: 500, NsOp: 100}
		}
	}
	return base
}

// scaledRunner returns the snapshot numbers multiplied by factor, recording
// how often each benchmark was run and asserting the pinned iteration count
// is the max across the snapshot's subs.
func scaledRunner(t *testing.T, base map[string]result, factor float64, runs map[string]int) func(string, string, int) (map[string]result, error) {
	return func(pkg, name string, iters int) (map[string]result, error) {
		runs[name]++
		want := 0
		out := make(map[string]result)
		for _, sub := range subBenchmarks(base, name) {
			if base[sub].Iters > want {
				want = base[sub].Iters
			}
			out[sub] = result{Iters: iters, NsOp: base[sub].NsOp * factor}
		}
		if iters != want {
			t.Errorf("%s: pinned %d iterations, want max-of-subs %d", name, iters, want)
		}
		return out, nil
	}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	base := fakeBase()
	runs := make(map[string]int)
	var out strings.Builder
	compared, failed, err := gate(&out, base, 20, scaledRunner(t, base, 1.1, runs))
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Errorf("failed = %d with +10%% vs 20%% tolerance\n%s", failed, out.String())
	}
	if want := len(fakeBase()); compared != want {
		t.Errorf("compared = %d, want %d", compared, want)
	}
	for name, n := range runs {
		if n != 1 {
			t.Errorf("%s run %d times, want 1 (within tolerance on the first run)", name, n)
		}
	}
	if !strings.Contains(out.String(), "ok") || strings.Contains(out.String(), "FAIL") {
		t.Errorf("report:\n%s", out.String())
	}
}

func TestGateFailsAfterThreeSlowRuns(t *testing.T) {
	base := fakeBase()
	runs := make(map[string]int)
	var out strings.Builder
	compared, failed, err := gate(&out, base, 20, scaledRunner(t, base, 1.5, runs))
	if err != nil {
		t.Fatal(err)
	}
	if failed != compared {
		t.Errorf("failed = %d of %d with +50%% vs 20%% tolerance\n%s", failed, compared, out.String())
	}
	for name, n := range runs {
		if n != 3 {
			t.Errorf("%s run %d times, want 3 (best-of-3 before failing)", name, n)
		}
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("report:\n%s", out.String())
	}
}

func TestGateRecoversOnRetry(t *testing.T) {
	// First run slow (transient load), second run clean: the gate must
	// retry and pass with the second run's numbers.
	base := fakeBase()
	calls := make(map[string]int)
	runner := func(pkg, name string, iters int) (map[string]result, error) {
		calls[name]++
		factor := 2.0
		if calls[name] > 1 {
			factor = 1.0
		}
		out := make(map[string]result)
		for _, sub := range subBenchmarks(base, name) {
			out[sub] = result{Iters: iters, NsOp: base[sub].NsOp * factor}
		}
		return out, nil
	}
	var out strings.Builder
	_, failed, err := gate(&out, base, 20, runner)
	if err != nil {
		t.Fatal(err)
	}
	if failed != 0 {
		t.Errorf("failed = %d, want 0 after the retry came back clean\n%s", failed, out.String())
	}
	for name, n := range calls {
		if n != 2 {
			t.Errorf("%s run %d times, want 2", name, n)
		}
	}
}

func TestGateErrorsOnIncompleteSnapshot(t *testing.T) {
	base := fakeBase()
	delete(base, "BenchmarkKernelEvent")
	var out strings.Builder
	if _, _, err := gate(&out, base, 20, scaledRunner(t, base, 1, make(map[string]int))); err == nil {
		t.Error("snapshot missing a gated benchmark accepted")
	}
}

func TestGateErrorsOnVanishedBenchmark(t *testing.T) {
	base := fakeBase()
	runner := func(pkg, name string, iters int) (map[string]result, error) {
		return map[string]result{}, nil // benchmark no longer in the tree
	}
	var out strings.Builder
	if _, _, err := gate(&out, base, 20, runner); err == nil {
		t.Error("vanished benchmark accepted")
	}
}

func TestGateErrorsOnRunnerFailure(t *testing.T) {
	base := fakeBase()
	runner := func(pkg, name string, iters int) (map[string]result, error) {
		return nil, fmt.Errorf("compile error")
	}
	var out strings.Builder
	if _, _, err := gate(&out, base, 20, runner); err == nil {
		t.Error("runner failure swallowed")
	}
}

func TestNewestSnapshot(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2026-07-29.json", "BENCH_2026-08-08.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := newestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(got) != "BENCH_2026-08-08.json" {
		t.Errorf("newestSnapshot = %s", got)
	}
	if _, err := newestSnapshot(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}

// TestRunBenchmarkRealExec executes one tiny real benchmark through the
// production exec path (pinned 10 iterations against the repo root package).
func TestRunBenchmarkRealExec(t *testing.T) {
	if testing.Short() {
		t.Skip("execs go test")
	}
	// cmd/qma-perfgate runs with its own directory as cwd; the gated
	// packages are addressed relative to the repo root.
	if err := os.Chdir("../.."); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir("cmd/qma-perfgate")
	res, err := runBenchmark(".", "BenchmarkKernelEvent", 10, testing.Verbose())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res["BenchmarkKernelEvent"]
	if !ok {
		t.Fatalf("BenchmarkKernelEvent missing from %v", res)
	}
	if got.Iters != 10 || got.NsOp <= 0 {
		t.Errorf("result = %+v, want 10 pinned iterations and positive ns/op", got)
	}
	if _, err := runBenchmark(".", "BenchmarkNoSuchBenchmark", 10, false); err != nil {
		// go test exits 0 when a -bench pattern matches nothing; either
		// outcome (empty result or error) is acceptable, just must not hang.
		t.Logf("no-match run: %v", err)
	}
}

func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[string][]string{"b": nil, "a": nil, "c": nil})
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("sortedKeys = %v", got)
	}
}
