// Command qma-perfgate is the CI performance gate: it re-runs the stable
// microbenchmarks with the iteration counts pinned to the committed
// BENCH_<date>.json snapshot (see README "Benchmark snapshots") and fails
// when any of them regressed by more than the tolerance in ns/op.
//
// Pinning the iteration count removes one source of run-to-run variance —
// both measurements average over the same number of iterations — but shared
// CI hardware still jitters, which is why the gate watches the
// allocation-free, CPU-bound microbenchmarks (kernel event dispatch, Q-table
// updates, learner observations, medium transmit, the handshake matrix
// solve, the sharded medium epoch) plus one deliberately short end-to-end
// benchmark, the sharded-scheduler runner (BenchmarkRunShardedWorkers, ~100
// ms/op — long enough to average out noise, short enough to rerun), and not
// the long events/s benchmarks, whose variance exceeds any usable
// tolerance. Those numbers stay visible in the CI logs via plain
// benchtime=1x smoke steps.
//
// Usage:
//
//	qma-perfgate [-snapshot BENCH_x.json] [-tolerance 20] [-v]
//
// Exit status 1 means at least one benchmark exceeded the tolerance (or the
// snapshot is unusable). A slow-but-within-tolerance run prints the ratios
// and exits 0. Skip the whole gate for a knowingly perf-neutral commit by
// putting [skip-perf] in the commit message (the CI job checks the tag).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// gated lists the benchmarks the gate compares, per package. Top-level names
// only — sub-benchmarks found under them in the snapshot are compared
// individually.
var gated = map[string][]string{
	".": {
		"BenchmarkKernelEvent",
		"BenchmarkQTableUpdate",
		"BenchmarkLearnerObserve",
		"BenchmarkMediumTransmit",
		"BenchmarkHandshakeMatrix",
	},
	"./internal/radio": {
		"BenchmarkShardedMediumCells",
	},
	"./internal/scenario": {
		"BenchmarkRunShardedWorkers",
	},
}

// result is one benchmark measurement: the iteration count and ns/op of a
// `go test -json` benchmark output line.
type result struct {
	Iters int
	NsOp  float64
}

func main() {
	snapshot := flag.String("snapshot", "", "BENCH_*.json snapshot to compare against (default: newest in cwd)")
	tolerance := flag.Float64("tolerance", 20, "maximum allowed ns/op regression in percent")
	verbose := flag.Bool("v", false, "print the go test invocations")
	flag.Parse()

	path := *snapshot
	if path == "" {
		var err error
		path, err = newestSnapshot(".")
		if err != nil {
			fatal("%v", err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	base, err := parseStream(f)
	f.Close()
	if err != nil {
		fatal("parse %s: %v", path, err)
	}
	fmt.Printf("perf gate vs %s (tolerance %.0f%%)\n", path, *tolerance)

	runner := func(pkg, name string, iters int) (map[string]result, error) {
		return runBenchmark(pkg, name, iters, *verbose)
	}
	compared, failed, err := gate(os.Stdout, base, *tolerance, runner)
	if err != nil {
		fatal("%v (snapshot %s)", err, path)
	}
	if compared == 0 {
		fatal("nothing compared — empty snapshot?")
	}
	if failed > 0 {
		fatal("%d of %d benchmarks regressed beyond %.0f%% vs %s", failed, compared, *tolerance, path)
	}
	fmt.Printf("all %d benchmarks within tolerance\n", compared)
}

// gate compares every gated benchmark against the snapshot measurements in
// base, invoking runner to collect fresh numbers, and returns how many
// sub-benchmarks it compared and how many exceeded the tolerance (percent).
func gate(w interface{ Write([]byte) (int, error) }, base map[string]result, tolerance float64,
	runner func(pkg, name string, iters int) (map[string]result, error)) (compared, failed int, err error) {
	for _, pkg := range sortedKeys(gated) {
		for _, name := range gated[pkg] {
			subs := subBenchmarks(base, name)
			if len(subs) == 0 {
				return 0, 0, fmt.Errorf("benchmark %s not in snapshot — refresh it (README recipe)", name)
			}
			// One run per top-level benchmark, iterations pinned to the
			// slowest sub so every sub gets at least its snapshot sample
			// size.
			iters := 0
			for _, sub := range subs {
				if base[sub].Iters > iters {
					iters = base[sub].Iters
				}
			}
			// Best-of-3: a single run on shared CI hardware jitters well
			// past any usable tolerance, so a benchmark only fails after
			// exceeding it in three consecutive runs (the minimum ns/op
			// across runs is compared — transient load slows a run down,
			// nothing speeds one up).
			best := make(map[string]float64)
			for attempt := 0; attempt < 3; attempt++ {
				cur, rerr := runner(pkg, name, iters)
				if rerr != nil {
					return 0, 0, fmt.Errorf("run %s: %v", name, rerr)
				}
				over := false
				for _, sub := range subs {
					now, ok := cur[sub]
					if !ok {
						return 0, 0, fmt.Errorf("benchmark %s vanished from the tree but is in the snapshot", sub)
					}
					if b, ok := best[sub]; !ok || now.NsOp < b {
						best[sub] = now.NsOp
					}
					if best[sub] > base[sub].NsOp*(1+tolerance/100) {
						over = true
					}
				}
				if !over {
					break
				}
			}
			for _, sub := range subs {
				was := base[sub]
				ratio := best[sub] / was.NsOp
				compared++
				status := "ok"
				if ratio > 1+tolerance/100 {
					status = "FAIL"
					failed++
				}
				fmt.Fprintf(w, "  %-44s %10.2f -> %10.2f ns/op  (%+6.1f%%)  %s\n",
					sub, was.NsOp, best[sub], (ratio-1)*100, status)
			}
		}
	}
	return compared, failed, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qma-perfgate: "+format+"\n", args...)
	os.Exit(1)
}

// newestSnapshot picks the lexically last BENCH_*.json in dir — the naming
// convention is BENCH_<ISO-date>.json, so lexical order is date order.
func newestSnapshot(dir string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(paths) == 0 {
		return "", fmt.Errorf("no BENCH_*.json snapshot in %s", dir)
	}
	sort.Strings(paths)
	return paths[len(paths)-1], nil
}

// event is the subset of the test2json schema the gate reads.
type event struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

// benchLine matches "<iterations>\t  <ns> ns/op" anywhere in a benchmark's
// accumulated output. go test wraps long benchmark names, so the name and
// the numbers may arrive in separate output events; accumulating per Test
// first makes the split irrelevant.
var benchLine = regexp.MustCompile(`(\d+)\t\s*([0-9.]+) ns/op`)

// parseStream reads a `go test -json` stream and returns ns/op per full
// benchmark name (e.g. "BenchmarkQTableUpdate/float64").
func parseStream(r interface{ Read([]byte) (int, error) }) (map[string]result, error) {
	acc := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("not a go-test-json event: %q: %v", line, err)
		}
		if ev.Action != "output" || ev.Test == "" {
			continue
		}
		b := acc[ev.Test]
		if b == nil {
			b = &strings.Builder{}
			acc[ev.Test] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]result)
	for name, b := range acc {
		m := benchLine.FindStringSubmatch(b.String())
		if m == nil {
			continue // a container like BenchmarkQTableUpdate itself, or a non-bench test
		}
		iters, err := strconv.Atoi(m[1])
		if err != nil {
			return nil, fmt.Errorf("%s: bad iteration count %q", name, m[1])
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad ns/op %q", name, m[2])
		}
		out[name] = result{Iters: iters, NsOp: ns}
	}
	return out, nil
}

// subBenchmarks returns the full names under top (top itself when it has a
// measurement, else its sub-benchmarks), sorted.
func subBenchmarks(results map[string]result, top string) []string {
	var out []string
	for name := range results {
		if name == top || strings.HasPrefix(name, top+"/") {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// runBenchmark executes one top-level benchmark with a pinned iteration
// count and returns its measurements keyed by full name.
func runBenchmark(pkg, name string, iters int, verbose bool) (map[string]result, error) {
	args := []string{"test", "-run", "^$", "-bench", "^" + regexp.QuoteMeta(name) + "$",
		"-benchtime", fmt.Sprintf("%dx", iters), "-count", "1", "-json", pkg}
	if verbose {
		fmt.Printf("  $ go %s\n", strings.Join(args, " "))
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	res, perr := parseStream(out)
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test: %v", err)
	}
	return res, perr
}

func sortedKeys(m map[string][]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
