package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBadFlagValuesExitNonZeroNamingTheFlag drives every user-facing parse
// error through run() and pins that the process would exit non-zero with a
// message naming the offending flag — a typo must never silently fall back
// to defaults.
func TestBadFlagValuesExitNonZeroNamingTheFlag(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		wantFlag string
	}{
		{"outage missing @", []string{"-fault-outage", "100+5"}, "-fault-outage"},
		{"outage bad node", []string{"-fault-outage", "x@100+5"}, "-fault-outage"},
		{"outage missing duration", []string{"-fault-outage", "1@100"}, "-fault-outage"},
		{"outage bad duration", []string{"-fault-outage", "1@100+x"}, "-fault-outage"},
		{"reboot missing @", []string{"-fault-reboot", "100"}, "-fault-reboot"},
		{"reboot bad instant", []string{"-fault-reboot", "0@x"}, "-fault-reboot"},
		{"ack-corrupt missing duration", []string{"-fault-ack-corrupt", "100"}, "-fault-ack-corrupt"},
		{"ack-corrupt bad start", []string{"-fault-ack-corrupt", "x+5"}, "-fault-ack-corrupt"},
		{"beacon-loss missing @", []string{"-fault-beacon-loss", "100+5"}, "-fault-beacon-loss"},
		{"beacon-loss bad window", []string{"-fault-beacon-loss", "1@z+5"}, "-fault-beacon-loss"},
		{"mac-opt without =", []string{"-mac-opt", "minbe"}, "-mac-opt"},
		{"mac-opt empty key", []string{"-mac-opt", "=3"}, "-mac-opt"},
		{"dynamics non-bool", []string{"-dynamics=maybe"}, "-dynamics"},
		{"unknown flag", []string{"-fault-quake", "1@2+3"}, "-fault-quake"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code == 0 {
				t.Fatalf("args %v accepted (exit 0); stderr: %s", tc.args, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantFlag) {
				t.Fatalf("stderr does not name %s:\n%s", tc.wantFlag, stderr.String())
			}
		})
	}
}

// TestSemanticFlagErrorsExitNonZero covers the post-parse validation paths:
// values that parse but describe an impossible run.
func TestSemanticFlagErrorsExitNonZero(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantMsg string
	}{
		{"unknown mac", []string{"-mac", "token-ring"}, "unknown MAC"},
		{"unknown topology", []string{"-topology", "moebius"}, "unknown topology"},
		{"mac-opt unknown key", []string{"-mac", "unslotted", "-mac-opt", "warp=9", "-duration", "1"}, "warp"},
		{"fault node out of range", []string{"-fault-outage", "99@10+5", "-duration", "1"}, "out of range"},
		{"fault on dsme path", []string{"-dsme", "-fault-reboot", "0@1"}, "-fault-"},
		{"fault on scale path", []string{"-scale", "50", "-fault-reboot", "0@1"}, "-fault-"},
		{"cells without mmtc", []string{"-cells", "2x2", "-duration", "1"}, "-cells requires -mmtc"},
		{"cells bad spec", []string{"-mmtc", "100", "-cells", "2by2", "-duration", "1", "-warmup", "0"}, "-cells"},
		{"cells zero count", []string{"-mmtc", "100", "-cells", "0x2", "-duration", "1", "-warmup", "0"}, "-cells"},
		{"mmtc with scale", []string{"-mmtc", "100", "-scale", "50", "-duration", "1"}, "-mmtc"},
		{"mmtc with dsme", []string{"-mmtc", "100", "-dsme", "-duration", "1"}, "-mmtc"},
		{"mmtc with mac-opt", []string{"-mmtc", "100", "-mac", "csma-unslotted", "-mac-opt", "minbe=2", "-duration", "1"}, "-mac-opt"},
		{"mmtc with summary-only", []string{"-mmtc", "100", "-summary-only", "-duration", "1"}, "-summary-only"},
		{"mmtc with faults", []string{"-mmtc", "100", "-fault-reboot", "0@1", "-duration", "1"}, "-fault-"},
		{"mmtc warmup past duration", []string{"-mmtc", "100", "-duration", "1", "-warmup", "2"}, "-warmup"},
		{"mmtc too few nodes per cell", []string{"-mmtc", "10", "-cells", "4x4", "-duration", "1", "-warmup", "0"}, "too small"},
		{"lockstep without mmtc", []string{"-lockstep", "-duration", "1"}, "-lockstep requires -mmtc"},
		{"cpuprofile bad path", []string{"-cpuprofile", "/no/such/dir/cpu.out", "-duration", "1"}, "-cpuprofile"},
		{"memprofile bad path", []string{"-memprofile", "/no/such/dir/mem.out", "-duration", "1"}, "-memprofile"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := run(tc.args, &stdout, &stderr)
			if code == 0 {
				t.Fatalf("args %v accepted (exit 0)", tc.args)
			}
			if !strings.Contains(stderr.String(), tc.wantMsg) {
				t.Fatalf("stderr does not mention %q:\n%s", tc.wantMsg, stderr.String())
			}
		})
	}
}

// TestFaultFlagsReachTheRun wires a full fault script through the CLI on a
// short run and checks it both executes and announces itself.
func TestFaultFlagsReachTheRun(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-duration", "20", "-warmup", "2", "-delta", "2",
		"-fault-outage", "1@8+2+beacons",
		"-fault-reboot", "0@12",
		"-fault-ack-corrupt", "14+1",
		"-fault-beacon-loss", "2@16+1",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "faults: 1 outage(s), 1 reboot(s), 1 ACK-corruption window(s), 1 beacon-loss window(s)") {
		t.Fatalf("fault banner missing:\n%s", out)
	}
	if !strings.Contains(out, "network PDR") {
		t.Fatalf("run did not complete:\n%s", out)
	}
}

// TestMMTCFlagRunsShardedCity drives a small sharded city end to end through
// the CLI and checks the per-cell table and network summary render.
func TestMMTCFlagRunsShardedCity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-mmtc", "400", "-cells", "2x1", "-delta", "0.2",
		"-duration", "8", "-warmup", "2", "-seed", "1",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"400 devices in 2x1 cells",
		"boundary links",
		"network PDR",
		"cross-cell",
		"cell   nodes   routed",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Two cell rows: one per cell of the 2x1 grid.
	if got := strings.Count(out, "\n"); got < 8 {
		t.Fatalf("suspiciously short output (%d lines):\n%s", got, out)
	}
}

// TestLockstepFlagSelectsReferenceScheduler drives -mmtc -lockstep end to
// end and pins both the scheduler banner and that the two schedulers print
// the same results (the CLI-level echo of the byte-identity contract).
func TestLockstepFlagSelectsReferenceScheduler(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run")
	}
	args := []string{
		"-mmtc", "400", "-cells", "2x1", "-delta", "0.2",
		"-duration", "8", "-warmup", "2", "-seed", "1",
	}
	var dep, lock, stderr bytes.Buffer
	if code := run(args, &dep, &stderr); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	if code := run(append([]string{"-lockstep"}, args...), &lock, &stderr); code != 0 {
		t.Fatalf("lockstep exit %d; stderr: %s", code, stderr.String())
	}
	out := lock.String()
	if !strings.Contains(out, "lock-step reference") {
		t.Fatalf("scheduler banner missing:\n%s", out)
	}
	// Strip the banner and the wall-clock-dependent lines; everything else
	// (per-cell table, PDR, delay tails, event counts) must match exactly.
	stable := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, "scheduler") ||
				strings.Contains(line, "simulated") || strings.Contains(line, "events/s") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if stable(dep.String()) != stable(out) {
		t.Fatalf("schedulers disagree:\n--- dependency-driven ---\n%s\n--- lock-step ---\n%s", dep.String(), out)
	}
}

// TestProfileFlagsWriteFiles pins that -cpuprofile/-memprofile produce
// non-empty pprof files on a successful run.
func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-duration", "5", "-warmup", "1", "-delta", "2",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestSummaryOnlyFlagSkipsPerNodeTable pins the -summary-only contract on
// the plain path: network totals only, no per-node rows.
func TestSummaryOnlyFlagSkipsPerNodeTable(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-summary-only", "-duration", "10", "-warmup", "2", "-delta", "2", "-seed", "1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "network PDR") || !strings.Contains(out, "events") {
		t.Fatalf("summary line missing:\n%s", out)
	}
	if strings.Contains(out, "policy") {
		t.Fatalf("per-node table rendered despite -summary-only:\n%s", out)
	}
}
