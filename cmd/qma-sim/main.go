// Command qma-sim runs a single scenario from flags and prints per-node
// metrics — the quickest way to poke at the simulator.
//
// Example:
//
//	qma-sim -topology hidden -mac qma -delta 25 -duration 200 -seed 1
//	qma-sim -topology rings3 -mac unslotted -dsme -duration 400
//	qma-sim -scale 10000 -delta 0.5 -duration 10 -warmup 1   # 10k-node factory hall
//	qma-sim -mmtc 100000 -cells 8x8 -delta 0.1 -duration 30 -warmup 5   # sharded city
//	qma-sim -fault-outage 1@100+5+beacons -fault-reboot 0@120 -duration 200
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"qma"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main without the process exit, so tests can drive the full flag
// surface — including every parse-error path — in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("qma-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)

	topology := fs.String("topology", "hidden", "hidden | tree | star | rings1..rings4")
	macFlag := fs.String("mac", "qma", "MAC protocol: "+macNames()+" (aliases like unslotted/slotted work too)")
	var macOpts kvFlag
	fs.Var(&macOpts, "mac-opt", "protocol option as key=value, repeatable (e.g. -mac csma -mac-opt minbe=2; -mac noma -mac-opt levels=3)")
	captureDB := fs.Float64("capture-db", 0, "SINR capture threshold in dB: the strongest overlapping frame decodes when it clears the interferer sum by this margin (0 = no capture; give noma runs 6 or so)")
	delta := fs.Float64("delta", 10, "packet generation rate per source [pkt/s]")
	duration := fs.Float64("duration", 200, "simulated seconds")
	warmup := fs.Float64("warmup", 50, "seconds before evaluation traffic / measurement")
	seed := fs.Uint64("seed", 1, "random seed")
	useDSME := fs.Bool("dsme", false, "run the DSME GTS scenario instead of plain contention")
	scale := fs.Int("scale", 0, "run a random-uniform factory hall with this many nodes instead of -topology")
	mmtc := fs.Int("mmtc", 0, "run a multi-cell sharded city with this many devices instead of -topology (one sink per cell, boundary-interference exchange at beacon epochs)")
	cellsSpec := fs.String("cells", "", "cell grid for -mmtc as XxY, e.g. 8x8 (default 4x4; 1x1 is monolithic-equivalent)")
	parallel := fs.Int("parallel", 0, "worker pool driving -mmtc cells (0 = all cores; results are byte-identical for every value)")
	lockstep := fs.Bool("lockstep", false, "drive -mmtc cells with the reference global-barrier scheduler instead of the dependency-driven one (profiling/equivalence; results are byte-identical)")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile (after the run, post-GC) to this file")
	summaryOnly := fs.Bool("summary-only", false, "skip per-node results: O(1) result memory, network totals only (plain and -scale paths)")
	degree := fs.Float64("degree", 0, "factory-hall/city target mean decode degree (0 = default 10)")
	dynamics := fs.Bool("dynamics", false, "enable link dynamics: a canned burst fade at -fade-node (see -fade-*)")
	fadeNode := fs.Int("fade-node", -1, "node to deep-fade with -dynamics (-1 = the sink)")
	fadeAt := fs.Float64("fade-at", -1, "fade start in seconds (-1 = half of -duration)")
	fadeFor := fs.Float64("fade-for", 5, "fade duration in seconds")
	geBad := fs.Float64("ge-bad", 0, "Gilbert–Elliott mean bad-state sojourn in seconds (0 = off; >0 enables the GE channel, with or without -dynamics)")
	geGood := fs.Float64("ge-good", 10, "Gilbert–Elliott mean good-state sojourn in seconds")
	var flt faultFlags
	fs.Var(&flt.outages, "fault-outage", "sink/node outage as NODE@AT+DUR or NODE@AT+DUR+beacons (seconds; +beacons also stops the node's beacons), repeatable")
	fs.Var(&flt.reboots, "fault-reboot", "node reboot (wipes learning state) as NODE@AT in seconds, repeatable")
	fs.Var(&flt.ackCorrupt, "fault-ack-corrupt", "global ACK-corruption window as AT+DUR in seconds, repeatable")
	fs.Var(&flt.beaconLoss, "fault-beacon-loss", "per-node beacon loss as NODE@AT+DUR in seconds, repeatable")
	loadMult := fs.Float64("load-mult", 1, "offered-load multiplier applied to -delta (overload experiments)")
	barringPolicy := fs.String("barring", "", "sink-side access-class barring policy: fixed | aimd | pid (empty = off)")
	barringP := fs.Float64("barring-p", 0, "barring factor for -barring fixed / initial factor for the adaptive policies (0 = fully open)")
	barringTarget := fs.Float64("barring-target", 0, "collision-ratio setpoint for -barring aimd/pid (0 = 0.1)")
	barringInterval := fs.Float64("barring-interval", 0, "barring beacon/observation interval in seconds (0 = one superframe)")
	barringBackoff := fs.Float64("barring-backoff", 0, "base wait of a barred node before redrawing, in seconds (0 = one superframe)")
	dropPolicy := fs.String("drop-policy", "", "full-queue backpressure policy: tail (default) | oldest | deadline")
	dropDeadline := fs.Float64("drop-deadline", 0, "queue-residence deadline in seconds for -drop-policy deadline (0 = 16 superframes)")
	if err := fs.Parse(args); err != nil {
		return 2 // the FlagSet already printed the offending flag to stderr
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "qma-sim:", err)
		return 1
	}

	// Profiles cover everything from here on (topology build included) and
	// are finalized on every exit path. Files are created eagerly so a bad
	// path fails before the simulation instead of after it.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fail(fmt.Errorf("-cpuprofile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("-cpuprofile: %w", err))
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fail(fmt.Errorf("-memprofile: %w", err))
		}
		defer func() {
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "qma-sim: -memprofile:", err)
			}
			f.Close()
		}()
	}

	mk, err := qma.ParseMAC(*macFlag)
	if err != nil {
		return fail(err)
	}

	wantDynamics := *dynamics || *geBad > 0
	if wantDynamics && (*scale > 0 || *useDSME || *mmtc > 0) {
		return fail(fmt.Errorf("-dynamics/-ge-bad are only supported on the plain contention path (not -scale, -dsme or -mmtc)"))
	}
	if flt.enabled() && (*scale > 0 || *useDSME || *mmtc > 0) {
		return fail(fmt.Errorf("-fault-* flags are only supported on the plain contention path (not -scale, -dsme or -mmtc)"))
	}
	if (*barringPolicy != "" || *dropPolicy != "") && (*scale > 0 || *useDSME || *mmtc > 0) {
		return fail(fmt.Errorf("-barring/-drop-policy are only supported on the plain contention path (not -scale, -dsme or -mmtc)"))
	}
	if *loadMult <= 0 {
		return fail(fmt.Errorf("-load-mult %g must be positive", *loadMult))
	}
	rate := *delta * *loadMult

	if *mmtc > 0 {
		switch {
		case *scale > 0 || *useDSME:
			return fail(fmt.Errorf("-mmtc is exclusive with -scale and -dsme"))
		case len(macOpts.kv) > 0 || *captureDB != 0:
			return fail(fmt.Errorf("-mac-opt/-capture-db are not supported on the -mmtc path"))
		case *summaryOnly:
			return fail(fmt.Errorf("-summary-only is implied by -mmtc (the sharded runner never holds per-node results)"))
		case *warmup >= *duration:
			return fail(fmt.Errorf("-warmup %g must be below -duration %g (no time left to measure)", *warmup, *duration))
		}
		cx, cy, err := parseCells(*cellsSpec)
		if err != nil {
			return fail(err)
		}
		return runMMTC(stdout, stderr, *mmtc, cx, cy, *degree, mk, rate, *duration, *warmup, *seed, *parallel, *lockstep)
	}
	if *cellsSpec != "" {
		return fail(fmt.Errorf("-cells requires -mmtc"))
	}
	if *lockstep {
		return fail(fmt.Errorf("-lockstep requires -mmtc"))
	}

	if *scale > 0 {
		if *warmup >= *duration {
			return fail(fmt.Errorf("-warmup %g must be below -duration %g (no time left to measure)", *warmup, *duration))
		}
		return runScale(stdout, stderr, *scale, *degree, mk, macOpts.kv, *captureDB, rate, *duration, *warmup, *seed, *summaryOnly)
	}

	topo, err := parseTopology(*topology)
	if err != nil {
		return fail(err)
	}

	if *useDSME {
		res, err := (&qma.DSMEScenario{
			Topology:        topo,
			MAC:             mk,
			Seed:            *seed,
			DurationSeconds: *duration,
			WarmupSeconds:   *warmup,
		}).Run()
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "secondary PDR        %.3f\n", res.SecondaryPDR)
		fmt.Fprintf(stdout, "GTS-request success  %.3f\n", res.RequestSuccess)
		fmt.Fprintf(stdout, "(de)allocations/s    %.2f\n", res.AllocationsPerSecond)
		fmt.Fprintf(stdout, "primary PDR          %.3f (delay %.3fs)\n", res.PrimaryPDR, res.PrimaryDelaySeconds)
		fmt.Fprintf(stdout, "duplicate GTS        %d\n", res.DuplicateAllocations)
		return 0
	}

	sc := &qma.Scenario{
		Topology:           topo,
		MAC:                mk,
		MACOptions:         macOpts.kv,
		CaptureThresholdDB: *captureDB,
		Seed:               *seed,
		DurationSeconds:    *duration,
		MeasureFromSeconds: *warmup,
		SummaryOnly:        *summaryOnly,
	}
	sink := topo.Sink()
	if wantDynamics {
		sc.Dynamics = &qma.Dynamics{}
		msg := "dynamics:"
		if *dynamics {
			node := *fadeNode
			if node < 0 {
				node = sink
			}
			at := *fadeAt
			if at < 0 {
				at = *duration / 2
			}
			sc.Dynamics.Fades = []qma.Fade{{Node: node, AtSeconds: at, ForSeconds: *fadeFor}}
			msg += fmt.Sprintf(" deep fade at node %d from %gs for %gs;", node, at, *fadeFor)
		}
		if *geBad > 0 {
			sc.Dynamics.Channel = qma.GilbertElliott{
				MeanGoodSeconds: *geGood,
				MeanBadSeconds:  *geBad,
				LossBad:         1,
			}
			msg += fmt.Sprintf(" Gilbert–Elliott channel good %gs / bad %gs;", *geGood, *geBad)
		}
		fmt.Fprintln(stdout, strings.TrimSuffix(msg, ";"))
	}
	if flt.enabled() {
		sc.Faults = flt.build()
		fmt.Fprintf(stdout, "faults: %d outage(s), %d reboot(s), %d ACK-corruption window(s), %d beacon-loss window(s)\n",
			len(sc.Faults.Outages), len(sc.Faults.Reboots), len(sc.Faults.AckCorruption), len(sc.Faults.BeaconLoss))
	}
	if *barringPolicy != "" {
		sc.Barring = &qma.Barring{
			Policy:          *barringPolicy,
			P:               *barringP,
			Target:          *barringTarget,
			IntervalSeconds: *barringInterval,
			BackoffSeconds:  *barringBackoff,
		}
		fmt.Fprintf(stdout, "barring: %s controller\n", *barringPolicy)
	}
	sc.DropPolicy = *dropPolicy
	sc.DropDeadlineSeconds = *dropDeadline
	if *loadMult != 1 {
		fmt.Fprintf(stdout, "offered load: %g pkt/s per source (%gx)\n", rate, *loadMult)
	}
	for i := 0; i < topo.NumNodes(); i++ {
		if i == sink {
			continue
		}
		sc.Traffic = append(sc.Traffic,
			qma.Traffic{Origin: i, Phases: []qma.Phase{{Rate: 0.2}}, StartSeconds: 1, Management: true},
			qma.Traffic{Origin: i, Phases: []qma.Phase{{Rate: rate}}, StartSeconds: *warmup},
		)
	}
	res, err := sc.Run()
	if err != nil {
		return fail(err)
	}

	if sc.Barring != nil && !sc.SummaryOnly {
		var barred, deadline uint64
		for _, n := range res.Nodes {
			barred += n.Barred
			deadline += n.DeadlineDrops
		}
		fmt.Fprintf(stdout, "barred attempts %d   deadline drops %d\n", barred, deadline)
	}
	if sc.SummaryOnly {
		fmt.Fprintf(stdout, "network PDR  %.3f   mean delay %.3fs   events %d\n", res.NetworkPDR, res.MeanDelaySeconds, res.Events)
		return 0
	}
	fmt.Fprintf(stdout, "network PDR  %.3f   mean delay %.3fs\n\n", res.NetworkPDR, res.MeanDelaySeconds)
	fmt.Fprintf(stdout, "%-6s %-5s %-9s %-9s %-7s %-8s %s\n", "node", "pdr", "delay[s]", "queue", "tx", "drops", "policy")
	for _, n := range res.Nodes {
		if n.Generated == 0 && n.TxAttempts == 0 {
			continue
		}
		fmt.Fprintf(stdout, "%-6s %-5.3f %-9.3f %-9.2f %-7d %-8d %s\n",
			n.Label, n.PDR, n.MeanDelaySeconds, n.AvgQueueLevel,
			n.TxAttempts, n.RetryDrops+n.QueueDrops, n.Policy)
	}
	return 0
}

// runScale builds a factory hall and reports aggregate metrics plus
// simulator throughput instead of a 10,000-row per-node table. Like the
// plain path it honours -warmup: evaluation traffic starts and measurement
// begins there (pass -warmup 1 or so for quick throughput probes).
func runScale(stdout, stderr io.Writer, nodes int, degree float64, mk qma.MAC, macOpts map[string]string, captureDB, delta, duration, warmup float64, seed uint64, summaryOnly bool) int {
	buildStart := time.Now()
	topo, err := qma.FactoryHall(nodes, degree, seed)
	if err != nil {
		fmt.Fprintln(stderr, "qma-sim:", err)
		return 1
	}
	buildWall := time.Since(buildStart)

	sc := &qma.Scenario{
		Topology:           topo,
		MAC:                mk,
		MACOptions:         macOpts,
		CaptureThresholdDB: captureDB,
		Seed:               seed,
		DurationSeconds:    duration,
		MeasureFromSeconds: warmup,
		SummaryOnly:        summaryOnly,
	}
	routed := 0
	for i := 0; i < nodes; i++ {
		if i == topo.Sink() || !topo.HasRoute(i) {
			continue
		}
		routed++
		sc.Traffic = append(sc.Traffic,
			qma.Traffic{Origin: i, Phases: []qma.Phase{{Rate: delta}}, StartSeconds: warmup})
	}
	runStart := time.Now()
	res, err := sc.Run()
	if err != nil {
		fmt.Fprintln(stderr, "qma-sim:", err)
		return 1
	}
	wall := time.Since(runStart)

	fmt.Fprintf(stdout, "factory hall    %d nodes (%d routed), built in %v\n", nodes, routed, buildWall.Round(time.Microsecond))
	fmt.Fprintf(stdout, "simulated       %.1fs under %s in %v\n", duration, mk, wall.Round(time.Millisecond))
	fmt.Fprintf(stdout, "events          %d (%.0f events/s wall clock)\n", res.Events, float64(res.Events)/wall.Seconds())
	fmt.Fprintf(stdout, "network PDR     %.3f   mean delay %.3fs\n", res.NetworkPDR, res.MeanDelaySeconds)
	return 0
}

// parseCells parses the -cells grid spec "XxY" ("" selects 4x4).
func parseCells(s string) (cx, cy int, err error) {
	if s == "" {
		return 4, 4, nil
	}
	xStr, yStr, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, fmt.Errorf("-cells wants XxY (e.g. 8x8), got %q", s)
	}
	if cx, err = strconv.Atoi(xStr); err != nil || cx < 1 {
		return 0, 0, fmt.Errorf("bad -cells x count %q", xStr)
	}
	if cy, err = strconv.Atoi(yStr); err != nil || cy < 1 {
		return 0, 0, fmt.Errorf("bad -cells y count %q", yStr)
	}
	return cx, cy, nil
}

// runMMTC drives the multi-cell sharded city and reports per-cell delivery
// plus the network-wide tails, boundary coupling and simulator throughput.
// Evaluation traffic starts at -warmup, like the -scale path.
func runMMTC(stdout, stderr io.Writer, nodes, cx, cy int, degree float64, mk qma.MAC, delta, duration, warmup float64, seed uint64, parallel int, lockstep bool) int {
	sc := &qma.MMTCScenario{
		Nodes:           nodes,
		CellsX:          cx,
		CellsY:          cy,
		Degree:          degree,
		MAC:             mk,
		Seed:            seed,
		DurationSeconds: duration,
		Rate:            delta,
		StartSeconds:    warmup,
		Parallel:        parallel,
		Lockstep:        lockstep,
	}
	if lockstep {
		fmt.Fprintln(stdout, "scheduler       lock-step reference (global epoch barrier)")
	}
	runStart := time.Now()
	res, err := sc.Run()
	if err != nil {
		fmt.Fprintln(stderr, "qma-sim:", err)
		return 1
	}
	wall := time.Since(runStart)

	routed := 0
	for i := range res.Cells {
		routed += res.Cells[i].Routed
	}
	fmt.Fprintf(stdout, "city            %d devices in %dx%d cells (%d routed, %d boundary links)\n",
		nodes, cx, cy, routed, res.BoundaryLinks)
	fmt.Fprintf(stdout, "simulated       %.1fs under %s in %v (build + run)\n", duration, mk, wall.Round(time.Millisecond))
	fmt.Fprintf(stdout, "events          %d (%.0f events/s wall clock)\n", res.Events, float64(res.Events)/wall.Seconds())
	if res.Truncated {
		fmt.Fprintln(stdout, "WARNING: at least one cell hit its event budget; results are truncated")
	}
	fmt.Fprintf(stdout, "network PDR     %.3f   mean delay %.3fs   p50/p95/p99 %.3f/%.3f/%.3fs\n",
		res.NetworkPDR, res.MeanDelaySeconds, res.DelayP50Seconds, res.DelayP95Seconds, res.DelayP99Seconds)
	fmt.Fprintf(stdout, "cross-cell      %.1f%% of transmissions mirrored into a neighbour cell\n\n", 100*res.CrossCellFraction)
	fmt.Fprintf(stdout, "%-6s %-7s %-7s %-6s %-9s %-8s %-9s %s\n", "cell", "nodes", "routed", "pdr", "delay[s]", "edge-tx", "foreign", "events")
	for _, c := range res.Cells {
		fmt.Fprintf(stdout, "%-6d %-7d %-7d %-6.3f %-9.3f %-8d %-9d %d\n",
			c.Cell, c.Nodes, c.Routed, c.PDR, c.MeanDelaySeconds, c.EdgeTx, c.ForeignBusy, c.Events)
	}
	return 0
}

func parseTopology(s string) (*qma.Topology, error) {
	switch s {
	case "hidden":
		return qma.HiddenNode(), nil
	case "tree":
		return qma.Tree10(), nil
	case "star":
		return qma.Star17(), nil
	}
	if strings.HasPrefix(s, "rings") {
		var k int
		if _, err := fmt.Sscanf(s, "rings%d", &k); err == nil {
			return qma.Rings(k)
		}
	}
	return nil, fmt.Errorf("unknown topology %q", s)
}

// macNames renders the registered protocol keys for the -mac usage string;
// the registry is the single source of truth, so new protocols appear here
// without CLI changes.
func macNames() string {
	var names []string
	for _, m := range qma.MACs() {
		names = append(names, string(m))
	}
	return strings.Join(names, " | ")
}

// kvFlag collects repeatable key=value flags into a map.
type kvFlag struct{ kv map[string]string }

func (f *kvFlag) String() string {
	var parts []string
	for k, v := range f.kv {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (f *kvFlag) Set(s string) error {
	key, value, ok := strings.Cut(s, "=")
	if !ok || key == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	if f.kv == nil {
		f.kv = make(map[string]string)
	}
	f.kv[key] = value
	return nil
}

// faultFlags aggregates the repeatable -fault-* flags into a qma.Faults
// script. Each flag value is a compact spec; the flag package prefixes any
// Set error with the flag's name, so bad specs always name their flag.
type faultFlags struct {
	outages    outageFlag
	reboots    rebootFlag
	ackCorrupt windowFlag
	beaconLoss beaconLossFlag
}

func (f *faultFlags) enabled() bool {
	return len(f.outages.v) > 0 || len(f.reboots.v) > 0 ||
		len(f.ackCorrupt.v) > 0 || len(f.beaconLoss.v) > 0
}

func (f *faultFlags) build() *qma.Faults {
	return &qma.Faults{
		Outages:       f.outages.v,
		Reboots:       f.reboots.v,
		AckCorruption: f.ackCorrupt.v,
		BeaconLoss:    f.beaconLoss.v,
	}
}

// parseNodeAt splits "NODE@REST" and parses the node id.
func parseNodeAt(s string) (node int, rest string, err error) {
	nodeStr, rest, ok := strings.Cut(s, "@")
	if !ok {
		return 0, "", fmt.Errorf("want NODE@..., got %q", s)
	}
	node, err = strconv.Atoi(nodeStr)
	if err != nil {
		return 0, "", fmt.Errorf("bad node id %q", nodeStr)
	}
	return node, rest, nil
}

// parseWindow parses "AT+DUR" in seconds.
func parseWindow(s string) (at, dur float64, err error) {
	atStr, durStr, ok := strings.Cut(s, "+")
	if !ok {
		return 0, 0, fmt.Errorf("want AT+DUR, got %q", s)
	}
	if at, err = strconv.ParseFloat(atStr, 64); err != nil {
		return 0, 0, fmt.Errorf("bad start %q", atStr)
	}
	if dur, err = strconv.ParseFloat(durStr, 64); err != nil {
		return 0, 0, fmt.Errorf("bad duration %q", durStr)
	}
	return at, dur, nil
}

type outageFlag struct{ v []qma.Outage }

func (f *outageFlag) String() string { return fmt.Sprintf("%v", f.v) }
func (f *outageFlag) Set(s string) error {
	spec, beacons := s, false
	if rest, ok := strings.CutSuffix(spec, "+beacons"); ok {
		spec, beacons = rest, true
	}
	node, rest, err := parseNodeAt(spec)
	if err != nil {
		return err
	}
	at, dur, err := parseWindow(rest)
	if err != nil {
		return err
	}
	f.v = append(f.v, qma.Outage{Node: node, AtSeconds: at, ForSeconds: dur, StopBeacons: beacons})
	return nil
}

type rebootFlag struct{ v []qma.RebootEvent }

func (f *rebootFlag) String() string { return fmt.Sprintf("%v", f.v) }
func (f *rebootFlag) Set(s string) error {
	node, rest, err := parseNodeAt(s)
	if err != nil {
		return err
	}
	at, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return fmt.Errorf("bad instant %q", rest)
	}
	f.v = append(f.v, qma.RebootEvent{Node: node, AtSeconds: at})
	return nil
}

type windowFlag struct{ v []qma.AckCorruption }

func (f *windowFlag) String() string { return fmt.Sprintf("%v", f.v) }
func (f *windowFlag) Set(s string) error {
	at, dur, err := parseWindow(s)
	if err != nil {
		return err
	}
	f.v = append(f.v, qma.AckCorruption{AtSeconds: at, ForSeconds: dur})
	return nil
}

type beaconLossFlag struct{ v []qma.BeaconLoss }

func (f *beaconLossFlag) String() string { return fmt.Sprintf("%v", f.v) }
func (f *beaconLossFlag) Set(s string) error {
	node, rest, err := parseNodeAt(s)
	if err != nil {
		return err
	}
	at, dur, err := parseWindow(rest)
	if err != nil {
		return err
	}
	f.v = append(f.v, qma.BeaconLoss{Node: node, AtSeconds: at, ForSeconds: dur})
	return nil
}
