// Command qma-sim runs a single scenario from flags and prints per-node
// metrics — the quickest way to poke at the simulator.
//
// Example:
//
//	qma-sim -topology hidden -mac qma -delta 25 -duration 200 -seed 1
//	qma-sim -topology rings3 -mac unslotted -dsme -duration 400
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qma"
)

func main() {
	topology := flag.String("topology", "hidden", "hidden | tree | star | rings1..rings4")
	mac := flag.String("mac", "qma", "qma | unslotted | slotted")
	delta := flag.Float64("delta", 10, "packet generation rate per source [pkt/s]")
	duration := flag.Float64("duration", 200, "simulated seconds")
	warmup := flag.Float64("warmup", 50, "seconds before evaluation traffic / measurement")
	seed := flag.Uint64("seed", 1, "random seed")
	useDSME := flag.Bool("dsme", false, "run the DSME GTS scenario instead of plain contention")
	flag.Parse()

	topo, err := parseTopology(*topology)
	fatalIf(err)
	mk, err := parseMAC(*mac)
	fatalIf(err)

	if *useDSME {
		res, err := (&qma.DSMEScenario{
			Topology:        topo,
			MAC:             mk,
			Seed:            *seed,
			DurationSeconds: *duration,
			WarmupSeconds:   *warmup,
		}).Run()
		fatalIf(err)
		fmt.Printf("secondary PDR        %.3f\n", res.SecondaryPDR)
		fmt.Printf("GTS-request success  %.3f\n", res.RequestSuccess)
		fmt.Printf("(de)allocations/s    %.2f\n", res.AllocationsPerSecond)
		fmt.Printf("primary PDR          %.3f (delay %.3fs)\n", res.PrimaryPDR, res.PrimaryDelaySeconds)
		fmt.Printf("duplicate GTS        %d\n", res.DuplicateAllocations)
		return
	}

	sc := &qma.Scenario{
		Topology:           topo,
		MAC:                mk,
		Seed:               *seed,
		DurationSeconds:    *duration,
		MeasureFromSeconds: *warmup,
	}
	sink := topo.Sink()
	for i := 0; i < topo.NumNodes(); i++ {
		if i == sink {
			continue
		}
		sc.Traffic = append(sc.Traffic,
			qma.Traffic{Origin: i, Phases: []qma.Phase{{Rate: 0.2}}, StartSeconds: 1, Management: true},
			qma.Traffic{Origin: i, Phases: []qma.Phase{{Rate: *delta}}, StartSeconds: *warmup},
		)
	}
	res, err := sc.Run()
	fatalIf(err)

	fmt.Printf("network PDR  %.3f   mean delay %.3fs\n\n", res.NetworkPDR, res.MeanDelaySeconds)
	fmt.Printf("%-6s %-5s %-9s %-9s %-7s %-8s %s\n", "node", "pdr", "delay[s]", "queue", "tx", "drops", "policy")
	for _, n := range res.Nodes {
		if n.Generated == 0 && n.TxAttempts == 0 {
			continue
		}
		fmt.Printf("%-6s %-5.3f %-9.3f %-9.2f %-7d %-8d %s\n",
			n.Label, n.PDR, n.MeanDelaySeconds, n.AvgQueueLevel,
			n.TxAttempts, n.RetryDrops+n.QueueDrops, n.Policy)
	}
}

func parseTopology(s string) (*qma.Topology, error) {
	switch s {
	case "hidden":
		return qma.HiddenNode(), nil
	case "tree":
		return qma.Tree10(), nil
	case "star":
		return qma.Star17(), nil
	}
	if strings.HasPrefix(s, "rings") {
		var k int
		if _, err := fmt.Sscanf(s, "rings%d", &k); err == nil {
			return qma.Rings(k)
		}
	}
	return nil, fmt.Errorf("unknown topology %q", s)
}

func parseMAC(s string) (qma.MAC, error) {
	switch s {
	case "qma":
		return qma.QMA, nil
	case "unslotted":
		return qma.CSMAUnslotted, nil
	case "slotted":
		return qma.CSMASlotted, nil
	}
	return 0, fmt.Errorf("unknown MAC %q", s)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qma-sim:", err)
		os.Exit(1)
	}
}
