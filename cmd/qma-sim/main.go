// Command qma-sim runs a single scenario from flags and prints per-node
// metrics — the quickest way to poke at the simulator.
//
// Example:
//
//	qma-sim -topology hidden -mac qma -delta 25 -duration 200 -seed 1
//	qma-sim -topology rings3 -mac unslotted -dsme -duration 400
//	qma-sim -scale 10000 -delta 0.5 -duration 10 -warmup 1   # 10k-node factory hall
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"qma"
)

func main() {
	topology := flag.String("topology", "hidden", "hidden | tree | star | rings1..rings4")
	mac := flag.String("mac", "qma", "MAC protocol: "+macNames()+" (aliases like unslotted/slotted work too)")
	var macOpts kvFlag
	flag.Var(&macOpts, "mac-opt", "protocol option as key=value, repeatable (e.g. -mac csma -mac-opt minbe=2; -mac noma -mac-opt levels=3)")
	captureDB := flag.Float64("capture-db", 0, "SINR capture threshold in dB: the strongest overlapping frame decodes when it clears the interferer sum by this margin (0 = no capture; give noma runs 6 or so)")
	delta := flag.Float64("delta", 10, "packet generation rate per source [pkt/s]")
	duration := flag.Float64("duration", 200, "simulated seconds")
	warmup := flag.Float64("warmup", 50, "seconds before evaluation traffic / measurement")
	seed := flag.Uint64("seed", 1, "random seed")
	useDSME := flag.Bool("dsme", false, "run the DSME GTS scenario instead of plain contention")
	scale := flag.Int("scale", 0, "run a random-uniform factory hall with this many nodes instead of -topology")
	degree := flag.Float64("degree", 0, "factory-hall target mean decode degree (0 = default 10)")
	dynamics := flag.Bool("dynamics", false, "enable link dynamics: a canned burst fade at -fade-node (see -fade-*)")
	fadeNode := flag.Int("fade-node", -1, "node to deep-fade with -dynamics (-1 = the sink)")
	fadeAt := flag.Float64("fade-at", -1, "fade start in seconds (-1 = half of -duration)")
	fadeFor := flag.Float64("fade-for", 5, "fade duration in seconds")
	geBad := flag.Float64("ge-bad", 0, "Gilbert–Elliott mean bad-state sojourn in seconds (0 = off; >0 enables the GE channel, with or without -dynamics)")
	geGood := flag.Float64("ge-good", 10, "Gilbert–Elliott mean good-state sojourn in seconds")
	flag.Parse()

	mk, err := qma.ParseMAC(*mac)
	fatalIf(err)

	wantDynamics := *dynamics || *geBad > 0
	if wantDynamics && (*scale > 0 || *useDSME) {
		fatalIf(fmt.Errorf("-dynamics/-ge-bad are only supported on the plain contention path (not -scale or -dsme)"))
	}

	if *scale > 0 {
		if *warmup >= *duration {
			fatalIf(fmt.Errorf("-warmup %g must be below -duration %g (no time left to measure)", *warmup, *duration))
		}
		runScale(*scale, *degree, mk, macOpts.kv, *captureDB, *delta, *duration, *warmup, *seed)
		return
	}

	topo, err := parseTopology(*topology)
	fatalIf(err)

	if *useDSME {
		res, err := (&qma.DSMEScenario{
			Topology:        topo,
			MAC:             mk,
			Seed:            *seed,
			DurationSeconds: *duration,
			WarmupSeconds:   *warmup,
		}).Run()
		fatalIf(err)
		fmt.Printf("secondary PDR        %.3f\n", res.SecondaryPDR)
		fmt.Printf("GTS-request success  %.3f\n", res.RequestSuccess)
		fmt.Printf("(de)allocations/s    %.2f\n", res.AllocationsPerSecond)
		fmt.Printf("primary PDR          %.3f (delay %.3fs)\n", res.PrimaryPDR, res.PrimaryDelaySeconds)
		fmt.Printf("duplicate GTS        %d\n", res.DuplicateAllocations)
		return
	}

	sc := &qma.Scenario{
		Topology:           topo,
		MAC:                mk,
		MACOptions:         macOpts.kv,
		CaptureThresholdDB: *captureDB,
		Seed:               *seed,
		DurationSeconds:    *duration,
		MeasureFromSeconds: *warmup,
	}
	sink := topo.Sink()
	if wantDynamics {
		sc.Dynamics = &qma.Dynamics{}
		msg := "dynamics:"
		if *dynamics {
			node := *fadeNode
			if node < 0 {
				node = sink
			}
			at := *fadeAt
			if at < 0 {
				at = *duration / 2
			}
			sc.Dynamics.Fades = []qma.Fade{{Node: node, AtSeconds: at, ForSeconds: *fadeFor}}
			msg += fmt.Sprintf(" deep fade at node %d from %gs for %gs;", node, at, *fadeFor)
		}
		if *geBad > 0 {
			sc.Dynamics.Channel = qma.GilbertElliott{
				MeanGoodSeconds: *geGood,
				MeanBadSeconds:  *geBad,
				LossBad:         1,
			}
			msg += fmt.Sprintf(" Gilbert–Elliott channel good %gs / bad %gs;", *geGood, *geBad)
		}
		fmt.Println(strings.TrimSuffix(msg, ";"))
	}
	for i := 0; i < topo.NumNodes(); i++ {
		if i == sink {
			continue
		}
		sc.Traffic = append(sc.Traffic,
			qma.Traffic{Origin: i, Phases: []qma.Phase{{Rate: 0.2}}, StartSeconds: 1, Management: true},
			qma.Traffic{Origin: i, Phases: []qma.Phase{{Rate: *delta}}, StartSeconds: *warmup},
		)
	}
	res, err := sc.Run()
	fatalIf(err)

	fmt.Printf("network PDR  %.3f   mean delay %.3fs\n\n", res.NetworkPDR, res.MeanDelaySeconds)
	fmt.Printf("%-6s %-5s %-9s %-9s %-7s %-8s %s\n", "node", "pdr", "delay[s]", "queue", "tx", "drops", "policy")
	for _, n := range res.Nodes {
		if n.Generated == 0 && n.TxAttempts == 0 {
			continue
		}
		fmt.Printf("%-6s %-5.3f %-9.3f %-9.2f %-7d %-8d %s\n",
			n.Label, n.PDR, n.MeanDelaySeconds, n.AvgQueueLevel,
			n.TxAttempts, n.RetryDrops+n.QueueDrops, n.Policy)
	}
}

// runScale builds a factory hall and reports aggregate metrics plus
// simulator throughput instead of a 10,000-row per-node table. Like the
// plain path it honours -warmup: evaluation traffic starts and measurement
// begins there (pass -warmup 1 or so for quick throughput probes).
func runScale(nodes int, degree float64, mk qma.MAC, macOpts map[string]string, captureDB, delta, duration, warmup float64, seed uint64) {
	buildStart := time.Now()
	topo, err := qma.FactoryHall(nodes, degree, seed)
	fatalIf(err)
	buildWall := time.Since(buildStart)

	sc := &qma.Scenario{
		Topology:           topo,
		MAC:                mk,
		MACOptions:         macOpts,
		CaptureThresholdDB: captureDB,
		Seed:               seed,
		DurationSeconds:    duration,
		MeasureFromSeconds: warmup,
	}
	routed := 0
	for i := 0; i < nodes; i++ {
		if i == topo.Sink() || !topo.HasRoute(i) {
			continue
		}
		routed++
		sc.Traffic = append(sc.Traffic,
			qma.Traffic{Origin: i, Phases: []qma.Phase{{Rate: delta}}, StartSeconds: warmup})
	}
	runStart := time.Now()
	res, err := sc.Run()
	fatalIf(err)
	wall := time.Since(runStart)

	fmt.Printf("factory hall    %d nodes (%d routed), built in %v\n", nodes, routed, buildWall.Round(time.Microsecond))
	fmt.Printf("simulated       %.1fs under %s in %v\n", duration, mk, wall.Round(time.Millisecond))
	fmt.Printf("events          %d (%.0f events/s wall clock)\n", res.Events, float64(res.Events)/wall.Seconds())
	fmt.Printf("network PDR     %.3f   mean delay %.3fs\n", res.NetworkPDR, res.MeanDelaySeconds)
}

func parseTopology(s string) (*qma.Topology, error) {
	switch s {
	case "hidden":
		return qma.HiddenNode(), nil
	case "tree":
		return qma.Tree10(), nil
	case "star":
		return qma.Star17(), nil
	}
	if strings.HasPrefix(s, "rings") {
		var k int
		if _, err := fmt.Sscanf(s, "rings%d", &k); err == nil {
			return qma.Rings(k)
		}
	}
	return nil, fmt.Errorf("unknown topology %q", s)
}

// macNames renders the registered protocol keys for the -mac usage string;
// the registry is the single source of truth, so new protocols appear here
// without CLI changes.
func macNames() string {
	var names []string
	for _, m := range qma.MACs() {
		names = append(names, string(m))
	}
	return strings.Join(names, " | ")
}

// kvFlag collects repeatable key=value flags into a map.
type kvFlag struct{ kv map[string]string }

func (f *kvFlag) String() string {
	var parts []string
	for k, v := range f.kv {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

func (f *kvFlag) Set(s string) error {
	key, value, ok := strings.Cut(s, "=")
	if !ok || key == "" {
		return fmt.Errorf("want key=value, got %q", s)
	}
	if f.kv == nil {
		f.kv = make(map[string]string)
	}
	f.kv[key] = value
	return nil
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "qma-sim:", err)
		os.Exit(1)
	}
}
